"""Siena's subscription language: attribute constraints and filters.

Besides matching, the module provides the *intersection* predicate the
advertisement/subscription interaction is built on:
:func:`filters_intersect` answers "could some notification satisfy both
filters?".  Brokers use it to forward a subscription toward a neighbour
only when that neighbour's subtree has advertised an intersecting
filter.  The predicate is conservative in the safe direction: a
``False`` answer is exact (no notification can satisfy both), while a
``True`` answer may be an over-approximation — which only costs
redundant forwarding, never lost notifications (the mirror image of
:func:`~repro.events.covering.filter_covers`'s conservatism).
"""

from __future__ import annotations

import enum
import math
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.events.model import AttributeValue, Notification


class Op(enum.Enum):
    """Comparison operators of the subscription language."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PREFIX = "prefix"
    SUFFIX = "suffix"
    CONTAINS = "contains"
    EXISTS = "exists"


_NUMERIC_OPS = {Op.LT, Op.LE, Op.GT, Op.GE}
_STRING_OPS = {Op.PREFIX, Op.SUFFIX, Op.CONTAINS}
_ORDER_CMP = {Op.EQ: operator.eq, Op.NE: operator.ne, Op.LT: operator.lt,
              Op.LE: operator.le, Op.GT: operator.gt, Op.GE: operator.ge}


def _compile(name: str, op: Op, value: Any) -> Callable[[Any], bool]:
    """Fuse one constraint into a closure over a Mapping-like notification.

    The operator dispatch, family check, and value comparison are
    resolved once here instead of re-branching on every ``matches``
    call; the closure is exactly equivalent to the interpreted
    :meth:`Constraint._matches_interpreted` (a property test pins this
    over every operator family).  Missing attributes come back as
    ``None`` from ``get``, which no family admits.
    """
    if op is Op.EXISTS:
        return lambda n: name in n
    if op is Op.PREFIX:
        return lambda n: isinstance(a := n.get(name), str) and a.startswith(value)
    if op is Op.SUFFIX:
        return lambda n: isinstance(a := n.get(name), str) and a.endswith(value)
    if op is Op.CONTAINS:
        return lambda n: isinstance(a := n.get(name), str) and value in a
    cmp = _ORDER_CMP[op]
    if isinstance(value, bool):
        return lambda n: isinstance(a := n.get(name), bool) and cmp(a, value)
    if isinstance(value, (int, float)):
        return lambda n: (
            isinstance(a := n.get(name), (int, float))
            and not isinstance(a, bool)
            and cmp(a, value)
        )
    return lambda n: isinstance(a := n.get(name), str) and cmp(a, value)


@dataclass(frozen=True, eq=False, slots=True)
class Constraint:
    """One (attribute, operator, value) predicate.

    Equality and hashing are family-aware: Python folds ``True`` into
    ``1``, but ``[x > True]`` and ``[x > 1]`` admit different values
    (matching compares within one type family), so they must not
    collapse into one identity in subscription stores, advertisement
    stores, or forwarded-filter sets — an advertisement silently
    deduplicated away would make pruning drop live traffic.

    ``matches`` dispatches through a closure compiled at construction
    (see :func:`_compile`); the per-call interpretation it replaces is
    kept as :meth:`_matches_interpreted` for the agreement tests.
    """

    name: str
    op: Op
    value: AttributeValue | None = None
    check: Callable[[Any], bool] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return (
            self.name == other.name
            and self.op is other.op
            and self.value == other.value
            and _family_tag(self.value) == _family_tag(other.value)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.op, _family_tag(self.value), self.value))

    def __post_init__(self) -> None:
        if self.op is Op.EXISTS:
            if self.value is not None:
                raise ValueError("EXISTS takes no value")
        elif self.value is None:
            raise ValueError(f"{self.op.value} requires a value")
        if self.op in _STRING_OPS and not isinstance(self.value, str):
            raise ValueError(f"{self.op.value} requires a string value")
        object.__setattr__(self, "check", _compile(self.name, self.op, self.value))

    def __reduce__(self):
        # The compiled closure is unpicklable (and stale state anyway);
        # rebuild from the triple so __post_init__ recompiles it.
        if self.op is Op.EXISTS:
            return (Constraint, (self.name, self.op))
        return (Constraint, (self.name, self.op, self.value))

    def matches(self, notification: Notification) -> bool:
        return self.check(notification)

    def _matches_interpreted(self, notification: Notification) -> bool:
        """Per-call interpreted matching; the reference for ``check``."""
        if self.name not in notification:
            return False
        actual = notification[self.name]
        if self.op is Op.EXISTS:
            return True
        if self.op in _STRING_OPS:
            if not isinstance(actual, str):
                return False
            if self.op is Op.PREFIX:
                return actual.startswith(self.value)
            if self.op is Op.SUFFIX:
                return actual.endswith(self.value)
            return self.value in actual
        if not _comparable(actual, self.value):
            return False
        if self.op is Op.EQ:
            return actual == self.value
        if self.op is Op.NE:
            return actual != self.value
        if self.op is Op.LT:
            return actual < self.value
        if self.op is Op.LE:
            return actual <= self.value
        if self.op is Op.GT:
            return actual > self.value
        return actual >= self.value  # GE

    def __repr__(self) -> str:
        if self.op is Op.EXISTS:
            return f"[{self.name} exists]"
        return f"[{self.name} {self.op.value} {self.value!r}]"


def _comparable(a: Any, b: Any) -> bool:
    """Siena compares within a type family: numbers with numbers, etc."""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _family_tag(value: Any) -> str:
    """The comparison-family tag used in constraint identity ('' = no value)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float)):
        return "n"
    return "s"


class Filter:
    """A conjunction of constraints; matches when every constraint does."""

    __slots__ = ("constraints", "_checks")

    def __init__(self, *constraints: Constraint):
        if not constraints:
            raise ValueError("a filter needs at least one constraint")
        self.constraints = tuple(constraints)
        self._checks = tuple(c.check for c in constraints)

    def matches(self, notification: Notification) -> bool:
        for check in self._checks:
            if not check(notification):
                return False
        return True

    def attribute_names(self) -> set[str]:
        return {c.name for c in self.constraints}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Filter) and set(self.constraints) == set(other.constraints)

    def __hash__(self) -> int:
        return hash(frozenset(self.constraints))

    def __repr__(self) -> str:
        return "Filter(" + " & ".join(repr(c) for c in self.constraints) + ")"


# ----------------------------------------------------------------------
# Convenience constructors mirroring the subscription language's syntax.
# ----------------------------------------------------------------------
def eq(name: str, value: AttributeValue) -> Constraint:
    return Constraint(name, Op.EQ, value)


def ne(name: str, value: AttributeValue) -> Constraint:
    return Constraint(name, Op.NE, value)


def lt(name: str, value: AttributeValue) -> Constraint:
    return Constraint(name, Op.LT, value)


def le(name: str, value: AttributeValue) -> Constraint:
    return Constraint(name, Op.LE, value)


def gt(name: str, value: AttributeValue) -> Constraint:
    return Constraint(name, Op.GT, value)


def ge(name: str, value: AttributeValue) -> Constraint:
    return Constraint(name, Op.GE, value)


def prefix(name: str, value: str) -> Constraint:
    return Constraint(name, Op.PREFIX, value)


def suffix(name: str, value: str) -> Constraint:
    return Constraint(name, Op.SUFFIX, value)


def contains(name: str, value: str) -> Constraint:
    return Constraint(name, Op.CONTAINS, value)


def exists(name: str) -> Constraint:
    return Constraint(name, Op.EXISTS)


def type_is(event_type: str) -> Constraint:
    return eq("type", event_type)


# ----------------------------------------------------------------------
# Intersection: could some notification satisfy both filters?
#
# A conjunction of constraints is satisfiable iff, attribute by
# attribute, some single value satisfies every constraint on that
# attribute (attributes are independent: a witness notification just
# carries one admissible value per constrained attribute).  Values live
# in three comparison families — bool, number, string — and a
# constraint only ever admits values of one family (EXISTS admits all),
# so satisfiability is decided per family: exhaustively for bools,
# by interval arithmetic for numbers, and by prefix/suffix
# compatibility plus pinned-value checks for strings.  String order
# ranges interacting with prefix/suffix patterns are the one place the
# answer is conservatively True.
# ----------------------------------------------------------------------
def constraint_admits(constraint: Constraint, value: AttributeValue) -> bool:
    """Would an attribute holding ``value`` satisfy ``constraint``?

    Exactly ``constraint.matches`` on a notification carrying that one
    attribute (the mapping protocol is all ``matches`` uses).
    """
    return constraint.matches({constraint.name: value})  # type: ignore[arg-type]


def _bool_satisfiable(constraints: list[Constraint]) -> bool:
    return any(
        all(constraint_admits(c, value) for c in constraints)
        for value in (True, False)
    )


def _numeric_satisfiable(constraints: list[Constraint]) -> bool:
    eqs = [c.value for c in constraints if c.op is Op.EQ]
    if eqs:
        # An equality pins the only candidate; every constraint votes.
        return all(constraint_admits(c, eqs[0]) for c in constraints)
    lo, lo_open = -math.inf, False
    hi, hi_open = math.inf, False
    for c in constraints:
        if c.op is Op.GT:
            if c.value > lo or (c.value == lo and not lo_open):
                lo, lo_open = c.value, True
        elif c.op is Op.GE:
            if c.value > lo:
                lo, lo_open = c.value, False
        elif c.op is Op.LT:
            if c.value < hi or (c.value == hi and not hi_open):
                hi, hi_open = c.value, True
        elif c.op is Op.LE:
            if c.value < hi:
                hi, hi_open = c.value, False
    if lo > hi:
        return False
    if lo == hi:
        if lo_open or hi_open:
            return False
        return all(constraint_admits(c, lo) for c in constraints)
    # A real interval over the (dense) numeric line: the finitely many
    # NE exclusions cannot empty it.
    return True


def _string_satisfiable(constraints: list[Constraint]) -> bool:
    eqs = [c.value for c in constraints if c.op is Op.EQ]
    if eqs:
        return all(constraint_admits(c, eqs[0]) for c in constraints)
    prefixes = [c.value for c in constraints if c.op is Op.PREFIX]
    if prefixes:
        longest = max(prefixes, key=len)
        if not all(longest.startswith(p) for p in prefixes):
            return False  # no string starts with two incomparable prefixes
    suffixes = [c.value for c in constraints if c.op is Op.SUFFIX]
    if suffixes:
        longest = max(suffixes, key=len)
        if not all(longest.endswith(s) for s in suffixes):
            return False
    lo: str | None = None
    lo_open = False
    hi: str | None = None
    hi_open = False
    for c in constraints:
        if c.op is Op.GT:
            if lo is None or c.value > lo or (c.value == lo and not lo_open):
                lo, lo_open = c.value, True
        elif c.op is Op.GE:
            if lo is None or c.value > lo:
                lo, lo_open = c.value, False
        elif c.op is Op.LT:
            if hi is None or c.value < hi or (c.value == hi and not hi_open):
                hi, hi_open = c.value, True
        elif c.op is Op.LE:
            if hi is None or c.value < hi:
                hi, hi_open = c.value, False
    if lo is not None and hi is not None:
        if lo > hi:
            return False
        if lo == hi:
            if lo_open or hi_open:
                return False
            return all(constraint_admits(c, lo) for c in constraints)
    if hi == "" and hi_open:
        return False  # no string is strictly below "", the lexicographic minimum
    if prefixes:
        # Every string with prefix P sits in the half-line [P, …): P is
        # its minimum, and any string above P *not* extending P differs
        # from P at some index i < len(P) with a larger character there —
        # so P-prefixed strings can never reach it.  That turns the
        # conservatively-True range × prefix corner exact:
        longest = max(prefixes, key=len)
        if hi is not None:
            if longest > hi:
                return False  # the whole half-line lies above the cap
            if longest == hi:
                if hi_open:
                    return False  # only P itself meets the cap, excluded
                # The cap pins the witness to exactly P.
                return all(constraint_admits(c, longest) for c in constraints)
        if lo is not None and lo > longest and not lo.startswith(longest):
            return False  # the whole half-line below lo's first divergence
    # Remaining combinations (pattern constraints, one-sided or roomy
    # ranges, NE exclusions over an infinite domain) either always admit
    # a witness — prefix+contains+suffix concatenations do — or are
    # conservatively declared satisfiable: lexicographic ranges fencing
    # with suffix/contains patterns is the over-approximated corner.
    return True


def constraints_satisfiable(constraints: Iterable[Constraint]) -> bool:
    """Can a single attribute value satisfy every constraint in the group?

    ``False`` is exact; ``True`` may be conservative (see module note).
    """
    group = list(constraints)
    families = {"b", "n", "s"}
    for c in group:
        if c.op is Op.EXISTS:
            continue
        families &= {"s"} if c.op in _STRING_OPS else {_family_tag(c.value)}
    if "b" in families and _bool_satisfiable(group):
        return True
    if "n" in families and _numeric_satisfiable(group):
        return True
    return "s" in families and _string_satisfiable(group)


def _signature(filter: Filter) -> frozenset:
    """A cache key for a filter's constraint set.

    Mirrors ``Constraint``'s family-tagged identity (``[x > True]`` and
    ``[x > 1]`` stay distinct) while keying the satisfiability caches on
    plain value tuples rather than retaining ``Filter`` objects.
    """
    return frozenset(
        (c.name, c.op, _family_tag(c.value), c.value) for c in filter.constraints
    )


_SAT_CACHE: dict[frozenset, bool] = {}
_INTERSECT_CACHE: dict[frozenset, bool] = {}
_CACHE_LIMIT = 16384


def filter_satisfiable(filter: Filter) -> bool:
    """Could any notification match ``filter``?  ``False`` is exact."""
    key = _signature(filter)
    cached = _SAT_CACHE.get(key)
    if cached is None:
        groups: dict[str, list[Constraint]] = {}
        for c in filter.constraints:
            groups.setdefault(c.name, []).append(c)
        cached = all(constraints_satisfiable(group) for group in groups.values())
        if len(_SAT_CACHE) >= _CACHE_LIMIT:
            _SAT_CACHE.clear()
        _SAT_CACHE[key] = cached
    return cached


def filters_intersect(a: Filter, b: Filter) -> bool:
    """Could some notification match both ``a`` and ``b``?

    Symmetric, and reflexive exactly on satisfiable filters.  A
    ``False`` answer is exact — advertisement-based pruning may rely on
    it to drop forwarding without ever losing a notification — while
    ``True`` may over-approximate (costing only redundant forwarding).
    Attributes constrained by just one side never block intersection on
    their own; only jointly-unsatisfiable attribute groups (including a
    side's own contradictions) do.
    """
    sig_a, sig_b = _signature(a), _signature(b)
    if sig_a == sig_b:
        return filter_satisfiable(a)
    key = frozenset((sig_a, sig_b))
    cached = _INTERSECT_CACHE.get(key)
    if cached is None:
        groups: dict[str, list[Constraint]] = {}
        for c in a.constraints:
            groups.setdefault(c.name, []).append(c)
        for c in b.constraints:
            groups.setdefault(c.name, []).append(c)
        cached = all(constraints_satisfiable(group) for group in groups.values())
        if len(_INTERSECT_CACHE) >= _CACHE_LIMIT:
            _INTERSECT_CACHE.clear()
        _INTERSECT_CACHE[key] = cached
    return cached
