"""Content-based event distribution (§3, §4.1).

``siena`` is the wide-area content-based broker network the paper proposes
as its generic global event service ("a general-purpose system such as Siena
would be ideal ... it has enough expressibility in its publish/subscribe
language and shows evidence of being globally scalable").  ``elvin`` is the
client-server baseline whose architecture "limits its scalability" — the
comparison is experiment E4.  ``mobility`` adds Mobikit-style proxies for
disconnected mobile clients (C9, E11).
"""

from repro.events.model import Notification, make_event
from repro.events.filters import Constraint, Filter, Op
from repro.events.covering import constraint_covers, filter_covers
from repro.events.index import CoveringPoset, PredicateIndex
from repro.events.subscriptions import Advertisement, Subscription
from repro.events.broker import (
    BrokerNode,
    SienaClient,
    build_broker_mesh,
    build_broker_tree,
)
from repro.events.elvin import ElvinClient, ElvinServer
from repro.events.failure import (
    FailureDetector,
    HeartbeatConfig,
    OriginFloorCache,
    install_detectors,
)
from repro.events.mobility import MobileClient

__all__ = [
    "Advertisement",
    "BrokerNode",
    "Constraint",
    "CoveringPoset",
    "ElvinClient",
    "ElvinServer",
    "FailureDetector",
    "Filter",
    "HeartbeatConfig",
    "MobileClient",
    "Notification",
    "Op",
    "OriginFloorCache",
    "PredicateIndex",
    "SienaClient",
    "Subscription",
    "build_broker_mesh",
    "build_broker_tree",
    "constraint_covers",
    "filter_covers",
    "install_detectors",
    "make_event",
]
