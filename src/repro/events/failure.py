"""Failure detection and state reclamation for the self-healing overlay.

PR 4 made the broker mesh *survive* a link kill, but only when the caller
invoked :meth:`~repro.events.broker.BrokerNode.disconnect` by hand.  This
module closes the loop: failure detection and state reclamation become
part of the routing layer itself, the way the Siena/Elvin lineage (and
the dynamic-service-infrastructure work, arXiv:1102.5193) treat them —
not something the application above is trusted to do.

Two cooperating pieces live here:

* :class:`FailureDetector` — a simulated-clock heartbeat protocol.  Each
  broker beats every ``interval`` seconds toward every neighbour (and
  toward every link it has already declared dead, which is what lets it
  notice a revival).  A link goes ``miss_limit`` beats without traffic —
  plus a ``grace`` allowance for worst-case transit, derived from the
  network's latency model — and the detector declares it dead, driving
  the broker's one-sided :meth:`~repro.events.broker.BrokerNode.drop_link`
  teardown exactly as a hand-written ``disconnect()`` would.  The first
  heartbeat to arrive from a suspected neighbour triggers
  :meth:`~repro.events.broker.BrokerNode.restore_link` — a re-join with
  full advertisement/subscription state exchange — plus a :class:`Resync`
  asking the far side to re-push its state even if *its* detector never
  fired (asymmetric suspicion must not leave a half-synced link).
  Intentional ``connect()``/``disconnect()`` calls inform the detector,
  so an administrative teardown is never mistaken for a failure to probe.

* :class:`OriginFloorCache` — principled publication-duplicate state.
  PR 4's seen-cache was a FIFO of the last N publication ids, bounded by
  a magic constant that merely had to be "generous".  The replacement
  keeps, per publication *origin*, a sequence **floor** (every sequence
  number at or below it has been seen) plus the sparse set of
  out-of-order sequences above it, and expires origins idle longer than
  ``ttl``.  The state is therefore bounded by the number of *live*
  origins (and, per origin, by the reordering the network can produce
  inside one ``ttl`` window) instead of by a guess, and the invariant is
  explicit: as long as every copy of a publication arrives within
  ``ttl`` of the origin's previous traffic, a publication that was never
  seen is never reported as a duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.network import Address
from repro.simulation import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.broker import BrokerNode

HEARTBEAT_BYTES = 64


# -- wire messages ------------------------------------------------------
@dataclass(slots=True)
class Heartbeat:
    """One liveness beat; ``seq`` only aids debugging, not the protocol."""

    seq: int = 0


@dataclass(slots=True)
class Resync:
    """Announce a link reset: drop my stale state, then expect a replay.

    Sent by the side that healed a suspected link, *before* it replays
    its own state (per-pair FIFO delivery keeps that order on the
    wire).  If the far side never suspected (asymmetric loss), two
    kinds of its state are stale: the forwarding bookkeeping claiming
    we hold filters we dropped, and the inbound entries we retracted
    during the outage whose Unsubscribe/Unadvertise never crossed the
    dead link.  The receiver discards both and replays its own state;
    the sender's replay follows right behind this message.
    """


# -- heartbeat failure detection ----------------------------------------
@dataclass(frozen=True)
class HeartbeatConfig:
    """Detector tuning.

    ``interval`` is the beat period; a link is declared dead after
    ``miss_limit`` intervals without inbound traffic plus ``grace``
    seconds of transit allowance (derived from the latency model's
    worst case when ``None``) — a timeout-style detector in the phi
    lineage: the threshold scales with the expected arrival process
    rather than being an absolute constant.  ``jitter`` (a fraction of
    the interval) desynchronises the fleet's beats so a large overlay
    does not emit its control traffic in lockstep bursts; the timeout
    accounts for it (a jittered sender may legitimately stretch the gap
    between beats by up to ``1 + jitter`` per interval).
    """

    interval: float = 0.5
    miss_limit: int = 3
    grace: float | None = None
    jitter: float = 0.1
    # Suspected links are probed on a capped exponential schedule rather
    # than every interval: the gap grows by ``probe_backoff`` per probe
    # up to ``probe_cap`` intervals, so a permanently-dead neighbour
    # costs O(t / cap) probes instead of O(t / interval).
    probe_backoff: float = 2.0
    probe_cap: float = 8.0
    # Flap damping: a link that dies again within ``flap_window`` of
    # being restored earns a flap point; at ``flap_threshold`` points it
    # is quarantined — restoration (and its full-state resync) is
    # withheld until the link stays continuously alive for
    # ``hold_down`` seconds.  ``None`` derives both from the timeout.
    flap_threshold: int = 2
    flap_window: float | None = None
    hold_down: float | None = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.miss_limit < 1:
            raise ValueError("miss_limit must be at least 1")
        if self.grace is not None and self.grace < 0:
            raise ValueError("grace must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.probe_backoff < 1.0:
            raise ValueError("probe_backoff must be at least 1")
        if self.probe_cap < 1.0:
            raise ValueError("probe_cap must be at least 1 interval")
        if self.flap_threshold < 1:
            raise ValueError("flap_threshold must be at least 1")
        if self.flap_window is not None and self.flap_window <= 0:
            raise ValueError("flap_window must be positive")
        if self.hold_down is not None and self.hold_down <= 0:
            raise ValueError("hold_down must be positive")


class FailureDetector:
    """Heartbeat-driven link failure detection for one broker.

    Attaching a detector sets ``broker.failure_detector``; the broker
    routes inbound :class:`Heartbeat` messages here and reports
    intentional topology changes via :meth:`watch`/:meth:`forget` so
    they are never mistaken for failures.
    """

    def __init__(self, broker: "BrokerNode", config: HeartbeatConfig | None = None):
        self.broker = broker
        self.config = config or HeartbeatConfig()
        self._seq = 0
        self._last_seen: dict[Address, float] = {}
        self._suspected: set[Address] = set()
        # Per-suspected-link probe schedule (capped exponential backoff).
        self._probe_next: dict[Address, float] = {}
        self._probe_interval: dict[Address, float] = {}
        # Flap damping: re-deaths shortly after a restore earn points;
        # past the threshold the link is quarantined behind a hold-down.
        self._flap_score: dict[Address, int] = {}
        self._restored_at: dict[Address, float] = {}
        self._hold_since: dict[Address, float] = {}
        self._stopped = False
        self.heartbeats_sent = 0
        self.probes_sent = 0
        self.links_declared_dead = 0
        self.links_restored = 0
        self.links_quarantined = 0
        broker.failure_detector = self
        now = broker.sim.now
        for neighbour in broker.neighbours:
            self._last_seen[neighbour] = now
        self._task = self._start_task()
        # A crashed broker must not keep beating (a dead NIC puts
        # nothing on the wire), and on revival its liveness windows are
        # all stale — reset them before judging anyone.
        broker.on_crash_hooks.append(self._on_broker_crash)
        broker.on_recover_hooks.append(self._on_broker_recover)

    def _start_task(self) -> PeriodicTask:
        return PeriodicTask(
            self.broker.sim,
            self.config.interval,
            self._tick,
            jitter=self.config.jitter,
            rng=self.broker.sim.rng_for(f"failure-detector-{self.broker.addr}"),
        )

    # ------------------------------------------------------------------
    @property
    def timeout(self) -> float:
        """Silence longer than this declares the link dead."""
        grace = self.config.grace
        if grace is None:
            worst_case = getattr(self.broker.network.latency, "worst_case_s", None)
            grace = (
                2.0 * worst_case(HEARTBEAT_BYTES)
                if worst_case is not None
                else self.config.interval
            )
        interval = self.config.interval * (1.0 + self.config.jitter)
        return self.config.miss_limit * interval + grace

    @property
    def flap_window(self) -> float:
        """A re-death within this span of a restore counts as a flap."""
        window = self.config.flap_window
        return 4.0 * self.timeout if window is None else window

    @property
    def hold_down(self) -> float:
        """Continuous liveness a quarantined link must show to restore."""
        hold = self.config.hold_down
        return 2.0 * self.timeout if hold is None else hold

    @property
    def suspected(self) -> frozenset:
        """Links currently declared dead and being probed for revival."""
        return frozenset(self._suspected)

    def quarantined(self, addr: Address) -> bool:
        """True while ``addr`` is suspected and flap-damped."""
        return (
            addr in self._suspected
            and self._flap_score.get(addr, 0) >= self.config.flap_threshold
        )

    def stop(self) -> None:
        """Stop beating and suspecting (the broker keeps its links)."""
        self._stopped = True
        self._task.stop()

    # ------------------------------------------------------------------
    # Host liveness (fail-stop crash / revival of our own broker)
    # ------------------------------------------------------------------
    def _on_broker_crash(self, host) -> None:
        self._task.stop()

    def _on_broker_recover(self, host) -> None:
        if self._stopped:
            return
        now = self.broker.sim.now
        # Every window went stale during the outage; restart them all so
        # revival does not instantly declare the whole world dead.
        for addr in self._last_seen:
            self._last_seen[addr] = now
        # Probe already-suspected links at full rate again: our peers
        # have been probing us and will restore quickly — so should we.
        for addr in self._suspected:
            self._probe_interval[addr] = self.config.interval
            self._probe_next[addr] = now
        self._hold_since.clear()
        self._task = self._start_task()

    # ------------------------------------------------------------------
    # Broker notifications (intentional topology changes)
    # ------------------------------------------------------------------
    def watch(self, neighbour: Address) -> None:
        """An administrative ``connect()`` added this link: monitor it,
        granting a full timeout window (and a clean flap record) before
        the first suspicion."""
        self._suspected.discard(neighbour)
        self._last_seen[neighbour] = self.broker.sim.now
        self._purge(neighbour)

    def forget(self, neighbour: Address) -> None:
        """An administrative ``disconnect()`` removed this link: its
        silence is intentional, so stop monitoring and probing it."""
        self._suspected.discard(neighbour)
        self._last_seen.pop(neighbour, None)
        self._purge(neighbour)

    def _purge(self, neighbour: Address) -> None:
        self._probe_next.pop(neighbour, None)
        self._probe_interval.pop(neighbour, None)
        self._flap_score.pop(neighbour, None)
        self._restored_at.pop(neighbour, None)
        self._hold_since.pop(neighbour, None)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.broker.sim.now
        beat = Heartbeat(self._seq)
        self._seq += 1
        for addr in set(self.broker.neighbours):
            self.broker.send(addr, beat, size_bytes=HEARTBEAT_BYTES)
            self.heartbeats_sent += 1
        for addr in self._suspected:
            # Suspected links are probed on their backoff schedule, not
            # every interval: a permanently-dead neighbour settles at
            # one probe per ``probe_cap`` intervals.
            if now < self._probe_next.get(addr, 0.0):
                continue
            self.broker.send(addr, beat, size_bytes=HEARTBEAT_BYTES)
            self.heartbeats_sent += 1
            self.probes_sent += 1
            gap = self._probe_interval.get(addr, self.config.interval)
            self._probe_next[addr] = now + gap
            self._probe_interval[addr] = min(
                gap * self.config.probe_backoff,
                self.config.probe_cap * self.config.interval,
            )
        timeout = self.timeout
        for addr in list(self.broker.neighbours):
            last = self._last_seen.get(addr)
            if last is None:
                # Link appeared without a connect() notification (e.g.
                # the far side restored one-sidedly): start its window.
                self._last_seen[addr] = now
            elif now - last > timeout:
                self._declare_dead(addr, now)

    def _declare_dead(self, addr: Address, now: float) -> None:
        self._suspected.add(addr)
        self.links_declared_dead += 1
        # Probe at full rate first — backoff grows from here.
        self._probe_interval[addr] = self.config.interval
        self._probe_next[addr] = now
        self._hold_since.pop(addr, None)
        restored = self._restored_at.pop(addr, None)
        if restored is not None and now - restored <= self.flap_window:
            # Re-death on the heels of a restore: that is a flap, and
            # each one cost a full drop/restore state exchange.
            score = self._flap_score.get(addr, 0) + 1
            self._flap_score[addr] = score
            if score == self.config.flap_threshold:
                self.links_quarantined += 1
        else:
            # A stable stretch clears the record.
            self._flap_score.pop(addr, None)
        self.broker.drop_link(addr)

    def on_heartbeat(self, src: Address, beat: Heartbeat) -> None:
        if src not in self.broker.neighbours and src not in self._suspected:
            # A stray beat (e.g. racing an administrative disconnect):
            # recording it would grow state for links we no longer track.
            return
        now = self.broker.sim.now
        previous = self._last_seen.get(src)
        self._last_seen[src] = now
        if src not in self._suspected:
            return
        # A talking link earns full-rate probing again — backoff is for
        # silence.  Without this, two mutually-suspecting detectors
        # could each probe too slowly to ever look alive to the other.
        self._probe_interval[src] = self.config.interval
        self._probe_next[src] = now
        if self._flap_score.get(src, 0) >= self.config.flap_threshold:
            # Quarantined: restoring now would just buy the next flap's
            # full-state exchange.  Demand ``hold_down`` seconds of
            # continuous liveness; any fresh gap restarts the clock.
            held = self._hold_since.get(src)
            fresh_gap = previous is not None and now - previous > self.timeout
            if held is None or fresh_gap:
                self._hold_since[src] = now
                return
            if now - held < self.hold_down:
                return
            self._flap_score.pop(src, None)
            self._hold_since.pop(src, None)
        # The neighbour is back.  Announce the link reset *first* —
        # per-pair FIFO guarantees the far side discards its stale
        # view of this link before our replay (restore_link's state
        # push) lands behind it.
        self._suspected.discard(src)
        self.links_restored += 1
        self._restored_at[src] = now
        self._probe_next.pop(src, None)
        self._probe_interval.pop(src, None)
        self.broker.send(src, Resync(), size_bytes=HEARTBEAT_BYTES)
        self.broker.restore_link(src)


def install_detectors(
    brokers, config: HeartbeatConfig | None = None
) -> list[FailureDetector]:
    """Attach one :class:`FailureDetector` per broker; returns them."""
    config = config or HeartbeatConfig()
    return [FailureDetector(broker, config) for broker in brokers]


# -- publication-duplicate state (per-origin sequence floors) -----------
@dataclass
class _OriginState:
    floor: int = -1  # every sequence <= floor has been seen
    pending: dict[int, float] = field(default_factory=dict)  # seq -> arrival
    last_active: float = 0.0


class OriginFloorCache:
    """Per-origin sequence floors with TTL expiry.

    ``seen(pub_id, now)`` returns True iff the publication was
    recorded before.  Contiguously-seen sequences collapse into the
    floor; out-of-order arrivals wait (timestamped) in ``pending`` until
    the gap below them fills.  A sweep — run lazily at most once per
    ``ttl`` — drops origins idle longer than ``ttl`` and compacts
    pending entries older than ``ttl``: a gap that stayed open that long
    means the missing publications exceeded the transit bound, so the
    floor may jump over them.

    The contract: pick ``ttl`` above the longest time a publication (or
    its duplicates) can spend crossing the overlay.  Then a never-seen
    publication is never reported as a duplicate, and the state is
    bounded by the live-origin count rather than a fixed-size guess.
    """

    def __init__(self, ttl: float = 30.0):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = ttl
        self._origins: dict[Address, _OriginState] = {}
        self._last_sweep = 0.0

    def __len__(self) -> int:
        """Number of origins currently tracked."""
        return len(self._origins)

    def pending_count(self) -> int:
        """Out-of-order sequences currently waiting across all origins."""
        return sum(len(state.pending) for state in self._origins.values())

    def seen(self, pub_id: tuple[Address, int], now: float) -> bool:
        """Record ``pub_id``; True iff it was already recorded."""
        if now - self._last_sweep >= self.ttl:
            self.expire(now)
        origin, seq = pub_id
        state = self._origins.get(origin)
        if state is None:
            state = self._origins[origin] = _OriginState()
        state.last_active = now
        if seq <= state.floor or seq in state.pending:
            return True
        state.pending[seq] = now
        while state.floor + 1 in state.pending:
            state.floor += 1
            del state.pending[state.floor]
        return False

    def expire(self, now: float) -> int:
        """Drop idle origins and compact stale gaps; returns drop count."""
        self._last_sweep = now
        cutoff = now - self.ttl
        dropped = 0
        for origin in list(self._origins):
            state = self._origins[origin]
            if state.last_active <= cutoff:
                del self._origins[origin]
                dropped += 1
                continue
            stale = [seq for seq, at in state.pending.items() if at <= cutoff]
            if stale:
                state.floor = max(state.floor, max(stale))
                state.pending = {
                    seq: at for seq, at in state.pending.items()
                    if seq > state.floor
                }
                while state.floor + 1 in state.pending:
                    state.floor += 1
                    del state.pending[state.floor]
        return dropped
