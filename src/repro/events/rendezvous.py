"""Scribe-style rendezvous routing for the broker fabric (routing="dht").

Flooding keeps O(global filters) control state on every broker, which
caps overlay size.  This module gives :class:`~repro.events.broker.
BrokerNode` a third routing mode built on the seed's Pastry machinery
(:mod:`repro.overlay.node_state`): every event subject — and every
filter signature — hashes to a 128-bit key, the key's numerically
closest broker is that key's *rendezvous root*, and a per-key multicast
tree rooted there carries the traffic.  A broker's control state is its
Pastry routing state (leaf set + prefix table, O(log N)) plus its local
interest and the tree edges passing through it — never the global
filter population.

Key derivation (the contract the dedup property suite pins):

* a subscription whose filter constrains ``type`` with equality joins
  the *subject key* of that type value; every other filter joins the
  shared *wildcard key* (nothing can be excluded for it, so its tree is
  the conservative catch-all);
* a publication routes to its subject key (when it carries a ``type``
  attribute) **and** to the wildcard key, so wildcard subscribers see
  typed traffic too;
* subject values are canonicalised family-first (bool / numeric /
  string, matching :func:`repro.events.filters._family_tag`) so
  ``1 == 1.0`` hashes identically while ``True`` never collides with
  ``1`` — exactly the equality the matching fabric applies;
* advertisements route to the subject key, falling back to the filter
  *signature* key for untyped shapes, and are stored at the root as a
  discovery registry.

Delivery correctness does not depend on tree precision: every broker a
publication touches runs it through the ordinary local matching path
(`_process_publication`), whose per-origin dedup
(:class:`~repro.events.failure.OriginFloorCache`) makes redundant
copies — type-key/wildcard-key overlap, stale tree edges during churn,
detour routes around failed links — collapse to exactly-once per
client.

Membership has two regimes:

* **Dynamically assembled fleets** (the equivalence suites): overlay
  links double as a gossip graph.  Each ``connect()`` exchanges
  ``RvHello`` membership snapshots, and genuinely new descriptors are
  flooded as ``RvAnnounce`` epidemics (scoped by per-origin sequence
  numbers), so a connected component converges to a shared ring view
  and components stay mutually invisible until a link merges them —
  matching flooding's no-cross-component delivery.  The ``directory``
  bookkeeping behind this is O(component) and is what keeps snapshot
  exchange lossless at test scale.
* **Fleet scale** (bench_e5's scale phase): ``build_dht_fleet`` in
  :mod:`repro.events.broker` pre-populates leaf sets and prefix tables
  from global knowledge — the converged state Pastry's join protocol
  maintains with O(log N) entries — and the directory stays empty, so
  the measured per-broker state is the honest Pastry footprint.

Repair composes with the failure detector: a declared-dead neighbour is
evicted from the ring view when its host really died, or marked
*unreachable* (route around the pair, keep the ring view) when only the
link failed; either way every local interest re-grafts immediately and
again on the periodic refresh, and stale tree children age out — the
leaf-set-repair-as-heal-path the roadmap asked for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.events.failure import OriginFloorCache
from repro.events.filters import Filter, Op, _family_tag, _signature
from repro.ids import Guid, guid_from_name
from repro.net.network import Address
from repro.overlay.api import NodeDescriptor
from repro.overlay.node_state import LeafSet, RoutingTable
from repro.simulation import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.broker import BrokerNode
    from repro.events.model import Notification

# A routed message that crosses more hops than this is dropped: greedy
# routing on consistent views strictly shrinks ring distance every hop,
# so the limit only ever fires while detour routing around failed links
# runs on inconsistent views.
RV_HOP_LIMIT = 32


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------
def canonical_subject(value: Any) -> str:
    """A family-tagged canonical form of one subject value.

    Mirrors the matching fabric's equality exactly: booleans are their
    own family (``True`` matches neither ``1`` nor ``1.0``), numerics
    collapse to their float repr (``1`` and ``1.0`` match the same
    events, so they must share a key), and strings are themselves.
    """
    tag = _family_tag(value)
    if tag == "n":
        try:
            return f"n:{float(value)!r}"
        except OverflowError:
            # An int beyond float range: no float can equal it, so its
            # exact repr is a stable (and collision-safe) fallback.
            return f"n:int:{value!r}"
    if tag == "b":
        return f"b:{value!r}"
    return f"s:{value}"


_subject_key_cache: dict[str, Guid] = {}


def subject_key(value: Any) -> Guid:
    """The rendezvous key of one event subject (``type`` value)."""
    canon = canonical_subject(value)
    key = _subject_key_cache.get(canon)
    if key is None:
        key = guid_from_name(f"rv:subject:{canon}")
        _subject_key_cache[canon] = key
    return key


WILDCARD_KEY = guid_from_name("rv:wildcard")


def filter_key(filter: Filter) -> Guid:
    """The key a subscription with this filter joins.

    A ``type`` equality constraint pins the only subject the filter can
    match, so it joins that subject's tree; anything else joins the
    wildcard tree.  A filter with several ``type`` equalities can only
    match events satisfying all of them, so any one of them is a sound
    (conservative) pick.
    """
    for constraint in filter.constraints:
        if constraint.name == "type" and constraint.op is Op.EQ:
            return subject_key(constraint.value)
    return WILDCARD_KEY


def signature_key(filter: Filter) -> Guid:
    """A stable key derived from the filter's full signature.

    Used for untyped advertisements: brokers registering the same shape
    must land on the same discovery root, so the key is built from the
    canonicalised, order-independent constraint signature.
    """
    parts = sorted(
        f"{name}|{op.name}|{canonical_subject(value)}"
        for name, op, _tag, value in _signature(filter)
    )
    return guid_from_name("rv:sig:" + ";".join(parts))


def advert_key(filter: Filter) -> Guid:
    """The discovery root for one advertised filter."""
    for constraint in filter.constraints:
        if constraint.name == "type" and constraint.op is Op.EQ:
            return subject_key(constraint.value)
    return signature_key(filter)


def publication_keys(notification: "Notification") -> tuple[Guid, ...]:
    """Every key a publication must reach: its subject plus the wildcard."""
    if "type" in notification:
        return (subject_key(notification["type"]), WILDCARD_KEY)
    return (WILDCARD_KEY,)


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RvHello:
    """Full membership snapshot pushed over a new/restored overlay link."""

    descriptors: tuple


@dataclass(slots=True)
class RvAnnounce:
    """Membership epidemic: descriptors flooded over overlay links.

    Scoped by ``(origin, seq)``: each broker forwards a given origin's
    announces at most once per sequence number, so the flood terminates
    after one traversal of the component.
    """

    descriptors: tuple
    origin: Address
    seq: int


@dataclass(slots=True)
class RvJoin:
    """Graft toward a key's root; every hop records the sender as a
    tree child for the key.  Joins run end to end on every refresh, so
    the timestamps double as the tree's liveness signal."""

    key: Guid
    member: Address
    hops: int = 0


@dataclass(slots=True)
class RvPublish:
    """A publication routed toward its key's rendezvous root."""

    key: Guid
    notification: Any
    pub_id: tuple
    hops: int = 0


@dataclass(slots=True)
class RvMulticast:
    """A publication flowing down one key's multicast tree."""

    key: Guid
    notification: Any
    pub_id: tuple
    hops: int = 0


@dataclass(slots=True)
class RvAdvertise:
    """Register an advertised filter at its discovery root."""

    key: Guid
    advertiser: Address
    filter: Filter
    hops: int = 0


@dataclass(slots=True)
class RvUnadvertise:
    key: Guid
    advertiser: Address
    filter: Filter
    hops: int = 0


@dataclass(slots=True)
class _KeyState:
    """Per-key tree state held by one broker (root or forwarder)."""

    children: dict = field(default_factory=dict)  # child addr -> last join time


class RendezvousEngine:
    """Per-broker rendezvous state machine (one per ``routing="dht"`` broker).

    Owns the broker's Pastry view (leaf set + prefix routing table +
    membership directory), its per-key multicast tree state, and the
    soft-state refresh loop that keeps both alive under churn.  The
    owning :class:`~repro.events.broker.BrokerNode` delegates here
    instead of flooding: subscriptions join their subject key's tree,
    advertisements register at the key's root, publications route
    point-to-point toward the root and fan down the tree.

    Knobs: ``leaf_size`` (default ``8``) is the Pastry leaf-set radius —
    larger tolerates more simultaneous adjacent failures at more state
    per broker; ``refresh_interval`` (default ``1.0`` s, surfaced as
    ``rv_refresh`` on the broker) paces tree re-join / advert
    re-registration and sets the child expiry ``child_ttl`` to 3.5×
    itself — lower heals partitions and crashed roots faster, higher
    cuts steady-state control traffic.  The flooding ablation is simply
    ``routing="flood"`` on the broker; E5's ``dht_scale`` phase prices
    the two against each other.
    """

    def __init__(
        self,
        broker: "BrokerNode",
        leaf_size: int = 8,
        refresh_interval: float = 1.0,
    ):
        self.broker = broker
        self.sim = broker.sim
        self.network = broker.network
        self.guid = guid_from_name(f"rv:node:{int(broker.addr)}")
        self.descriptor = NodeDescriptor(self.guid, broker.addr, broker.position)
        self.leaf_size = leaf_size
        self.leaf = LeafSet(self.descriptor, size=leaf_size)
        self.table = RoutingTable(self.descriptor)
        # Every live member of our component, keyed by address — the
        # lossless bookkeeping behind snapshot exchange.  Empty on
        # fast-built fleets (see the module docstring's two regimes).
        self.directory: dict[Address, NodeDescriptor] = {}
        # Live peers whose *direct link* to us failed (detector-declared
        # dead but the host answers): route around them, keep them in
        # the ring view so root determination stays globally consistent.
        self.unreachable: set[Address] = set()
        # Local interest: key -> count of local client subscriptions.
        self.local_keys: dict[Guid, int] = {}
        # Locally advertised shapes, re-registered on every refresh.
        self.local_adverts: dict[tuple[Address, Filter], Guid] = {}
        # Tree state per key (children recorded from join paths).
        self.trees: dict[Guid, _KeyState] = {}
        # Advert registry held while we are a key's root.
        self.root_adverts: dict[Guid, set[tuple[Address, Filter]]] = {}
        # Per-key forwarding dedup for multicasts (loops under churn).
        self._mcast_seen: dict[Guid, OriginFloorCache] = {}
        self._announce_seq = 0
        self._announce_floor: dict[Address, int] = {}
        self.refresh_interval = refresh_interval
        self.child_ttl = 3.5 * refresh_interval
        # Delivery-path telemetry for the scale benchmark.
        self.delivery_hops_sum = 0
        self.delivery_hops_count = 0
        self.joins_sent = 0
        self.publications_routed = 0
        broker.on_recover_hooks.append(self._on_recover)
        self._refresh = PeriodicTask(
            self.sim, refresh_interval, self._refresh_tick
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _is_live(self, addr: Address) -> bool:
        host = self.network.host(addr)
        return host is not None and host.alive

    def _learn(self, descriptor: NodeDescriptor) -> bool:
        """Absorb one descriptor; True when it was genuinely new."""
        if descriptor.addr == self.broker.addr:
            return False
        if not self._is_live(descriptor.addr):
            return False
        fresh = descriptor.addr not in self.directory
        self.directory[descriptor.addr] = descriptor
        self.leaf.add(descriptor)
        self.table.add(descriptor)
        return fresh

    def _evict(self, addr: Address) -> None:
        self.unreachable.discard(addr)
        descriptor = self.directory.pop(addr, None)
        if descriptor is not None:
            self.leaf.remove(descriptor.guid)
            self.table.remove(descriptor.guid)

    def hello(self, neighbour: Address) -> None:
        """Push our membership snapshot over a new/restored overlay link."""
        self.unreachable.discard(neighbour)
        snapshot = tuple(self.directory.values()) + (self.descriptor,)
        self.broker._send_control(neighbour, RvHello(snapshot))
        self.regraft()

    def on_link_down(self, neighbour: Address) -> None:
        """The broker dropped a link (detector or administrative).

        A dead host leaves the ring; a live one only loses its direct
        pair with us — evicting it would fork the ring view and split
        roots, so it is merely routed around until the link restores.
        """
        if not self._is_live(neighbour):
            self._evict(neighbour)
        else:
            self.unreachable.add(neighbour)
        self.regraft()

    def _flood_announce(self, descriptors: tuple) -> None:
        self._announce_seq += 1
        msg = RvAnnounce(descriptors, self.broker.addr, self._announce_seq)
        for neighbour in self.broker.neighbours:
            self.broker._send_control(neighbour, msg)

    def _handle_hello(self, src: Address, msg: RvHello) -> None:
        self.unreachable.discard(src)
        fresh = tuple(d for d in msg.descriptors if self._learn(d))
        if fresh:
            # Announce the newly merged members (and ourselves) to the
            # whole component, so both sides of the merge converge.
            self._flood_announce(fresh + (self.descriptor,))
            self.regraft()

    def _handle_announce(self, src: Address, msg: RvAnnounce) -> None:
        if msg.seq <= self._announce_floor.get(msg.origin, 0):
            return
        self._announce_floor[msg.origin] = msg.seq
        fresh = [d for d in msg.descriptors if self._learn(d)]
        for neighbour in self.broker.neighbours:
            if neighbour != src:
                self.broker._send_control(neighbour, msg)
        if fresh:
            self.regraft()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _metric(self, guid: Guid, key: Guid) -> tuple:
        return (key.ring_distance(guid), guid.value)

    def next_hop(self, key: Guid) -> Address | None:
        """The next broker toward ``key``'s root; None when we act as root.

        Greedy over the union of leaf set, prefix table, and directory:
        ring distance strictly shrinks every hop on consistent views, so
        routing terminates at the globally closest live broker.  Dead
        candidates are evicted lazily; live-but-unreachable ones are
        skipped, and when only such a candidate beats us we *detour*
        through the best reachable one (bounded by ``RV_HOP_LIMIT``)
        instead of wrongly crowning ourselves root.
        """
        while True:
            candidates: dict[Address, NodeDescriptor] = {}
            for descriptor in self.leaf.members():
                candidates[descriptor.addr] = descriptor
            for descriptor in self.table:
                candidates[descriptor.addr] = descriptor
            candidates.update(self.directory)
            dead = [a for a in candidates if not self._is_live(a)]
            if not dead:
                break
            for addr in dead:
                candidates.pop(addr)
                self._evict(addr)
        mine = self._metric(self.guid, key)
        best = None
        best_metric = mine
        blocked_closer = False
        reachable: list[tuple[tuple, Address]] = []
        for addr, descriptor in candidates.items():
            metric = self._metric(descriptor.guid, key)
            if addr in self.unreachable:
                if metric < mine:
                    blocked_closer = True
                continue
            reachable.append((metric, addr))
            if metric < best_metric:
                best_metric = metric
                best = addr
        if best is not None:
            return best
        if blocked_closer and reachable:
            # Not the true root, but every closer candidate lost its
            # direct pair with us: detour via the closest reachable
            # peer, which can still reach the root directly.
            return min(reachable)[0]
        return None

    def is_root(self, key: Guid) -> bool:
        return self.next_hop(key) is None

    # ------------------------------------------------------------------
    # Interest (joins/leaves driven by the broker's subscription store)
    # ------------------------------------------------------------------
    def on_subscribe(self, filter: Filter) -> None:
        key = filter_key(filter)
        self.local_keys[key] = self.local_keys.get(key, 0) + 1
        self._graft(key)

    def on_unsubscribe(self, filter: Filter) -> None:
        key = filter_key(filter)
        count = self.local_keys.get(key, 0) - 1
        if count <= 0:
            self.local_keys.pop(key, None)
        else:
            self.local_keys[key] = count
        # No upward prune: local matching already excludes the departed
        # subscription, and the tree edge ages out via the child TTL.

    def on_advertise(self, source: Address, filter: Filter) -> None:
        key = advert_key(filter)
        self.local_adverts[(source, filter)] = key
        self._route_advert(RvAdvertise(key, self.broker.addr, filter))

    def on_unadvertise(self, source: Address, filter: Filter) -> None:
        key = self.local_adverts.pop((source, filter), None)
        if key is not None:
            self._route_advert(RvUnadvertise(key, self.broker.addr, filter))

    def _graft(self, key: Guid) -> None:
        nxt = self.next_hop(key)
        if nxt is not None:
            self.joins_sent += 1
            self.broker._send_control(nxt, RvJoin(key, self.broker.addr, 1))

    def regraft(self) -> None:
        """Re-route every local interest end to end.

        Runs on every membership change and every refresh tick: after a
        merge, a crash, a recovery, or a re-rooting, the join paths are
        rebuilt from the current ring view, and the refresh timestamps
        keep live tree edges from aging out.
        """
        for key in self.local_keys:
            self._graft(key)
        for (_, filter), key in self.local_adverts.items():
            self._route_advert(
                RvAdvertise(key, self.broker.addr, filter)
            )

    def _handle_join(self, src: Address, msg: RvJoin) -> None:
        state = self.trees.setdefault(msg.key, _KeyState())
        state.children[src] = self.sim.now
        nxt = self.next_hop(msg.key)
        if nxt is not None and nxt != src and msg.hops < RV_HOP_LIMIT:
            self.broker._send_control(
                nxt, RvJoin(msg.key, msg.member, msg.hops + 1)
            )

    # ------------------------------------------------------------------
    # Advertisement registry
    # ------------------------------------------------------------------
    def _route_advert(self, msg: RvAdvertise | RvUnadvertise) -> None:
        nxt = self.next_hop(msg.key)
        if nxt is None:
            self._register_advert(msg)
        else:
            self.broker._send_control(
                nxt, type(msg)(msg.key, msg.advertiser, msg.filter, msg.hops + 1)
            )

    def _register_advert(self, msg: RvAdvertise | RvUnadvertise) -> None:
        entry = (msg.advertiser, msg.filter)
        if isinstance(msg, RvAdvertise):
            self.root_adverts.setdefault(msg.key, set()).add(entry)
            return
        registry = self.root_adverts.get(msg.key)
        if registry is not None:
            registry.discard(entry)
            if not registry:
                del self.root_adverts[msg.key]

    def _handle_advert(self, src: Address, msg: RvAdvertise | RvUnadvertise) -> None:
        nxt = self.next_hop(msg.key)
        if nxt is None:
            self._register_advert(msg)
        elif nxt != src and msg.hops < RV_HOP_LIMIT:
            self.broker._send_control(
                nxt, type(msg)(msg.key, msg.advertiser, msg.filter, msg.hops + 1)
            )

    # ------------------------------------------------------------------
    # Publication flow
    # ------------------------------------------------------------------
    def publish(self, notification: "Notification", pub_id: tuple) -> None:
        """Route a locally-originated publication to every relevant root."""
        self.publications_routed += 1
        for key in publication_keys(notification):
            self._route_publication(key, notification, pub_id, 0)

    def _route_publication(
        self, key: Guid, notification: "Notification", pub_id: tuple, hops: int
    ) -> None:
        nxt = self.next_hop(key)
        if nxt is None:
            self._forward_down(key, notification, pub_id, hops, exclude=None)
        elif hops < RV_HOP_LIMIT:
            self.broker.send(
                nxt,
                RvPublish(key, notification, pub_id, hops + 1),
                size_bytes=notification.size_bytes(),
            )

    def _handle_publish(self, src: Address, msg: RvPublish) -> None:
        # Every hop runs the local matching path: dedup makes it
        # idempotent, and en-route brokers with matching local interest
        # deliver early even while their tree graft is still converging.
        self._note_delivery(msg.hops)
        self.broker._process_publication(src, msg.notification, msg.pub_id)
        self._route_publication(msg.key, msg.notification, msg.pub_id, msg.hops)

    def _handle_multicast(self, src: Address, msg: RvMulticast) -> None:
        self._note_delivery(msg.hops)
        self.broker._process_publication(src, msg.notification, msg.pub_id)
        self._forward_down(
            msg.key, msg.notification, msg.pub_id, msg.hops, exclude=src
        )

    def _forward_down(
        self,
        key: Guid,
        notification: "Notification",
        pub_id: tuple,
        hops: int,
        exclude: Address | None,
    ) -> None:
        seen = self._mcast_seen.get(key)
        if seen is None:
            seen = OriginFloorCache(ttl=self.broker.seen_ttl)
            self._mcast_seen[key] = seen
        if seen.seen(pub_id, self.sim.now):
            return
        state = self.trees.get(key)
        if state is None or hops >= RV_HOP_LIMIT:
            return
        size = notification.size_bytes()
        for child in list(state.children):
            if child == exclude or child in self.unreachable:
                continue
            if not self._is_live(child):
                del state.children[child]
                continue
            self.broker.send(
                child,
                RvMulticast(key, notification, pub_id, hops + 1),
                size_bytes=size,
            )

    def _note_delivery(self, hops: int) -> None:
        self.delivery_hops_sum += hops
        self.delivery_hops_count += 1

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _refresh_tick(self) -> None:
        if not self.broker.alive:
            return
        now = self.sim.now
        for key, state in list(self.trees.items()):
            for child, stamp in list(state.children.items()):
                if now - stamp > self.child_ttl or not self._is_live(child):
                    del state.children[child]
            if not state.children:
                del self.trees[key]
        for key in list(self.root_adverts):
            if not self.is_root(key):
                # Re-rooted away from us: our registry copy is stale.
                del self.root_adverts[key]
        for seen in self._mcast_seen.values():
            seen.expire(now)
        self.regraft()

    def _on_recover(self, _host) -> None:
        """Broker restart: drop everything learned before the outage.

        Local interest (``local_keys``/``local_adverts``) survives — it
        mirrors the broker's subscription store, which a crash does not
        clear — while ring view and tree state rebuild from the hellos
        the failure detectors trigger as links restore.
        """
        self.directory.clear()
        self.unreachable.clear()
        self.leaf = LeafSet(self.descriptor, size=self.leaf_size)
        self.table = RoutingTable(self.descriptor)
        self.trees.clear()
        self.root_adverts.clear()
        self._mcast_seen.clear()
        self._announce_floor.clear()

    def stop(self) -> None:
        self._refresh.stop()

    # ------------------------------------------------------------------
    # Accounting and dispatch
    # ------------------------------------------------------------------
    def state_size(self) -> int:
        """Control-state entries this broker holds for rendezvous routing."""
        return (
            len(self.leaf.members())
            + len(self.table)
            + len(self.directory)
            + len(self.local_keys)
            + len(self.local_adverts)
            + sum(len(state.children) for state in self.trees.values())
            + sum(len(entries) for entries in self.root_adverts.values())
        )

    def mean_delivery_hops(self) -> float:
        if not self.delivery_hops_count:
            return 0.0
        return self.delivery_hops_sum / self.delivery_hops_count

    def handle(self, src: Address, payload) -> bool:
        """Dispatch one rendezvous message; False if it is not ours."""
        if isinstance(payload, RvPublish):
            self._handle_publish(src, payload)
        elif isinstance(payload, RvMulticast):
            self._handle_multicast(src, payload)
        elif isinstance(payload, RvJoin):
            self._handle_join(src, payload)
        elif isinstance(payload, RvHello):
            self._handle_hello(src, payload)
        elif isinstance(payload, RvAnnounce):
            self._handle_announce(src, payload)
        elif isinstance(payload, (RvAdvertise, RvUnadvertise)):
            self._handle_advert(src, payload)
        else:
            return False
        return True
