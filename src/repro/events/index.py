"""Predicate-indexed matching fabric: counting index and covering poset.

The seed matched every notification against every filter with a linear
scan — O(subscriptions × constraints) per publication — and answered
covering questions ("is this filter covered by an already-forwarded
one?", "what was this removed filter masking?") by rescanning whole
filter lists.  Siena-lineage systems get their throughput from two data
structures, reproduced here and shared by every dispatching layer
(:class:`~repro.events.broker.BrokerNode`,
:class:`~repro.events.elvin.ElvinServer`, and the matching engine's
event→pattern pinning):

* :class:`PredicateIndex` — the *counting algorithm*.  Filters are
  decomposed into their attribute constraints and each constraint is
  filed in a per-attribute operator index: hash buckets for ``EQ`` /
  ``NE`` / ``EXISTS``, bisect-sorted threshold arrays for ``LT`` /
  ``LE`` / ``GT`` / ``GE``, exact-pattern hash tables for ``PREFIX`` /
  ``SUFFIX`` (probed with every prefix/suffix of the actual value, so
  a probe costs O(len(actual)) dict lookups instead of a bucket scan)
  and first-character-bucketed tables for ``CONTAINS``.  Matching a
  notification is one pass over its attributes: every satisfied
  constraint bumps a per-filter counter, and a filter matches when its
  counter reaches its constraint count.  Only predicates that could
  plausibly be satisfied are ever examined.  The counters live in
  preallocated arrays reused across calls — the match hot path
  allocates no per-event dicts (the PR 6 profile in
  ``benchmarks/PROFILE.md`` showed per-event dict churn dominating).

* :meth:`PredicateIndex.match_batch` — the *batched* hot path.  A batch
  shares one candidate-collection sweep per distinct (attribute, value)
  pair (repeated values — event types, room names, URLs — collapse into
  one sweep), and when numpy is available the per-event counter
  accumulation vectorises into one ``bincount`` over concatenated
  candidate-id arrays (threshold ranges are zero-copy slices of lazily
  maintained numpy mirrors).  Results are exactly ``[match(n) for n in
  batch]`` — the randomized batch-equivalence suite enforces it — and
  the pure-python fallback (numpy absent, or ``vectorized=False``)
  factors batch-common keys into a shared base counter array instead.

* :class:`CoveringPoset` — the covering partial order.  ``a`` can only
  cover ``b`` when every attribute ``a`` constrains is also constrained
  by ``b`` (:func:`~repro.events.covering.constraint_covers` requires
  equal names), so candidates are pruned with an attribute-name
  inverted index — refined with per-name operator/family bitsets: a
  stored ``[x > 5]`` can only be covered by an ``x`` constraint from
  the numeric ``{>, >=, =}`` families, so probes lacking those never
  reach the exact :func:`~repro.events.covering.filter_covers` check.

All structures are exact: they return precisely what the naive
``Filter.matches`` / ``filter_covers`` scans return — the randomized
equivalence suites in ``tests/test_index_equivalence.py`` and
``tests/test_batch_equivalence.py`` enforce this across all ten
operators — so consumers can dispatch through them while the
``indexed=False`` ablation keeps the naive path measurable (benchmark
E13 reports the speedup; its ``batch`` phase reports the batched one).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from typing import Any

try:  # vectorised batch counting; every path has a pure-python fallback
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.events.covering import filter_covers
from repro.events.filters import (
    Constraint,
    Filter,
    Op,
    filter_satisfiable,
    filters_intersect,
)
from repro.events.model import Notification

_RANGE_OPS = (Op.LT, Op.LE, Op.GT, Op.GE)


def _family(value: Any) -> str:
    """The comparison type family, mirroring ``filters._comparable``.

    Booleans compare only with booleans, numbers with numbers, strings
    with strings; tagging bucket keys with the family keeps ``1`` from
    colliding with ``True`` (equal hashes, different families).
    """
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float)):
        return "n"
    return "s"


class _Thresholds:
    """Parallel (sorted values, filter ids) arrays for one range operator."""

    __slots__ = ("values", "fids", "np_fids")

    def __init__(self) -> None:
        self.values: list = []
        self.fids: list[int] = []
        self.np_fids = None  # lazily rebuilt numpy mirror of ``fids``

    def insert(self, value: Any, fid: int) -> None:
        at = bisect_right(self.values, value)
        self.values.insert(at, value)
        self.fids.insert(at, fid)
        self.np_fids = None

    def remove(self, value: Any, fid: int) -> None:
        at = bisect_left(self.values, value)
        while self.fids[at] != fid:
            at += 1
        del self.values[at]
        del self.fids[at]
        self.np_fids = None

    def window(self, op: Op, actual: Any) -> tuple[int, int]:
        """The [lo, hi) index window of thresholds ``actual`` satisfies."""
        values = self.values
        if op is Op.LT:  # actual < threshold
            return bisect_right(values, actual), len(values)
        if op is Op.LE:  # actual <= threshold
            return bisect_left(values, actual), len(values)
        if op is Op.GT:  # threshold < actual
            return 0, bisect_left(values, actual)
        return 0, bisect_right(values, actual)  # GE: threshold <= actual

    def mirror(self):
        """The numpy mirror of ``fids`` (rebuilt after mutations)."""
        arr = self.np_fids
        if arr is None:
            arr = self.np_fids = _np.array(self.fids, dtype=_np.int64)
        return arr


class _AttributeIndex:
    """Every constraint on one attribute name, filed by operator class."""

    __slots__ = (
        "exists", "eq", "ne_all", "ne_eq", "ranges", "prefix", "suffix",
        "contains", "prefix_maxlen", "suffix_maxlen",
        "np_exists", "np_eq", "np_ne_all",
    )

    def __init__(self) -> None:
        self.exists: list[int] = []
        # (family, value) -> filter ids.  The family tag keeps bool/int apart.
        self.eq: dict[tuple, list[int]] = {}
        self.ne_all: dict[str, list[int]] = {}
        self.ne_eq: dict[tuple, list[int]] = {}
        # (op, family) -> sorted threshold arrays.
        self.ranges: dict[tuple, _Thresholds] = {}
        # Exact pattern value -> filter ids.  A probe enumerates every
        # prefix (suffix) of the actual value — O(len) dict hits instead
        # of scanning a shared-first-character bucket (every URL starts
        # with "h", every user id with "u": the buckets degenerate).
        self.prefix: dict[str, list[int]] = {}
        self.suffix: dict[str, list[int]] = {}
        # first character -> [(constraint value, filter id)]; the ""
        # bucket holds empty-string patterns, which match everything.
        self.contains: dict[str, list[tuple[str, int]]] = {}
        # Longest registered pattern: bounds the prefix/suffix probes.
        self.prefix_maxlen = 0
        self.suffix_maxlen = 0
        # Lazily rebuilt numpy mirrors (None = stale or absent).
        self.np_exists = None
        self.np_eq: dict[tuple, Any] | None = None
        self.np_ne_all: dict[str, Any] | None = None

    def add(self, constraint: Constraint, fid: int) -> None:
        op, value = constraint.op, constraint.value
        if op is Op.EXISTS:
            self.exists.append(fid)
            self.np_exists = None
        elif op is Op.EQ:
            self.eq.setdefault((_family(value), value), []).append(fid)
            self.np_eq = None
        elif op is Op.NE:
            fam = _family(value)
            self.ne_all.setdefault(fam, []).append(fid)
            self.ne_eq.setdefault((fam, value), []).append(fid)
            self.np_ne_all = None
        elif op in _RANGE_OPS:
            self.ranges.setdefault((op, _family(value)), _Thresholds()).insert(value, fid)
        elif op is Op.PREFIX:
            self.prefix.setdefault(value, []).append(fid)
            if len(value) > self.prefix_maxlen:
                self.prefix_maxlen = len(value)
        elif op is Op.SUFFIX:
            self.suffix.setdefault(value, []).append(fid)
            if len(value) > self.suffix_maxlen:
                self.suffix_maxlen = len(value)
        else:  # CONTAINS
            self.contains.setdefault(value[:1], []).append((value, fid))

    def remove(self, constraint: Constraint, fid: int) -> None:
        op, value = constraint.op, constraint.value
        if op is Op.EXISTS:
            self.exists.remove(fid)
            self.np_exists = None
        elif op is Op.EQ:
            bucket = self.eq[(_family(value), value)]
            bucket.remove(fid)
            if not bucket:
                del self.eq[(_family(value), value)]
            self.np_eq = None
        elif op is Op.NE:
            fam = _family(value)
            self.ne_all[fam].remove(fid)
            self.ne_eq[(fam, value)].remove(fid)
            if not self.ne_eq[(fam, value)]:
                del self.ne_eq[(fam, value)]
            self.np_ne_all = None
        elif op in _RANGE_OPS:
            self.ranges[(op, _family(value))].remove(value, fid)
        elif op is Op.PREFIX:
            bucket = self.prefix[value]
            bucket.remove(fid)
            if not bucket:
                del self.prefix[value]
                # maxlen stays a (harmless) upper bound on probe count.
        elif op is Op.SUFFIX:
            bucket = self.suffix[value]
            bucket.remove(fid)
            if not bucket:
                del self.suffix[value]
        else:
            self.contains[value[:1]].remove((value, fid))

    def candidate_fids(self, actual: Any) -> list[int]:
        """Ids of every constraint ``actual`` satisfies, with multiplicity.

        One entry per satisfied constraint (a filter constraining the
        same attribute twice appears twice) — the caller bumps a counter
        per entry, exactly like the unbatched collect path.
        """
        out: list[int] = []
        fam = _family(actual)
        if self.exists:
            out.extend(self.exists)
        hits = self.eq.get((fam, actual))
        if hits:
            out.extend(hits)
        pool = self.ne_all.get(fam)
        if pool:
            excluded = self.ne_eq.get((fam, actual))
            if excluded:
                skip = Counter(excluded)
                for fid in pool:
                    if skip.get(fid):
                        skip[fid] -= 1
                        continue
                    out.append(fid)
            else:
                out.extend(pool)
        if self.ranges:
            for (op, rfam), thresholds in self.ranges.items():
                if rfam != fam:
                    continue
                lo, hi = thresholds.window(op, actual)
                if hi > lo:
                    out.extend(thresholds.fids[lo:hi])
        if fam == "s":
            if self.prefix:
                for i in range(min(self.prefix_maxlen, len(actual)) + 1):
                    hits = self.prefix.get(actual[:i])
                    if hits:
                        out.extend(hits)
            if self.suffix:
                n = len(actual)
                for i in range(min(self.suffix_maxlen, n) + 1):
                    hits = self.suffix.get(actual[n - i:])
                    if hits:
                        out.extend(hits)
            if self.contains:
                bucket = self.contains.get("")
                if bucket:
                    out.extend(fid for _value, fid in bucket)  # "" is in every string
                for char in set(actual):
                    bucket = self.contains.get(char)
                    if not bucket:
                        continue
                    for value, fid in bucket:
                        if value in actual:
                            out.append(fid)
        return out

    def collect(self, actual: Any, counts: list[int], touched: list[int]) -> int:
        """Bump ``counts`` (a flat array indexed by fid) for every
        constraint ``actual`` satisfies, recording first-touched fids.

        Returns the number of candidate predicates examined (the
        indexed analogue of the naive scan's match operations).
        """
        ops = 0
        fam = _family(actual)

        for fid in self.exists:
            c = counts[fid]
            if not c:
                touched.append(fid)
            counts[fid] = c + 1
        ops += len(self.exists)

        hits = self.eq.get((fam, actual))
        if hits:
            for fid in hits:
                c = counts[fid]
                if not c:
                    touched.append(fid)
                counts[fid] = c + 1
            ops += len(hits)

        pool = self.ne_all.get(fam)
        if pool:
            ops += len(pool)
            excluded = self.ne_eq.get((fam, actual))
            if excluded:
                skip = Counter(excluded)
                for fid in pool:
                    if skip.get(fid):
                        skip[fid] -= 1
                        continue
                    c = counts[fid]
                    if not c:
                        touched.append(fid)
                    counts[fid] = c + 1
            else:
                for fid in pool:
                    c = counts[fid]
                    if not c:
                        touched.append(fid)
                    counts[fid] = c + 1

        if self.ranges:
            for (op, rfam), thresholds in self.ranges.items():
                if rfam != fam:
                    continue
                lo, hi = thresholds.window(op, actual)
                for fid in thresholds.fids[lo:hi]:
                    c = counts[fid]
                    if not c:
                        touched.append(fid)
                    counts[fid] = c + 1
                ops += hi - lo

        if fam == "s":
            if self.prefix:
                for i in range(min(self.prefix_maxlen, len(actual)) + 1):
                    hits = self.prefix.get(actual[:i])
                    if hits:
                        ops += len(hits)
                        for fid in hits:
                            c = counts[fid]
                            if not c:
                                touched.append(fid)
                            counts[fid] = c + 1
            if self.suffix:
                n = len(actual)
                for i in range(min(self.suffix_maxlen, n) + 1):
                    hits = self.suffix.get(actual[n - i:])
                    if hits:
                        ops += len(hits)
                        for fid in hits:
                            c = counts[fid]
                            if not c:
                                touched.append(fid)
                            counts[fid] = c + 1
            if self.contains:
                bucket = self.contains.get("")
                if bucket:
                    ops += len(bucket)
                    for _value, fid in bucket:
                        c = counts[fid]
                        if not c:
                            touched.append(fid)
                        counts[fid] = c + 1  # "" is in every string
                for char in set(actual):
                    bucket = self.contains.get(char)
                    if not bucket:
                        continue
                    ops += len(bucket)
                    for value, fid in bucket:
                        if value in actual:
                            c = counts[fid]
                            if not c:
                                touched.append(fid)
                            counts[fid] = c + 1
        return ops

    # -- numpy mirrors (vectorised batch path) --------------------------
    def candidate_arrays(self, actual: Any, out: list) -> int:
        """Append numpy candidate-id arrays for ``actual`` to ``out``.

        Shared pools (EXISTS, EQ buckets, NE pools, threshold windows)
        come from lazily maintained mirrors — threshold windows are
        zero-copy slices — while per-probe hit lists (patterns, NE
        exclusions) are materialised on the spot.  Returns the candidate
        count (the ``ops`` contribution).
        """
        ops = 0
        fam = _family(actual)
        if self.exists:
            arr = self.np_exists
            if arr is None:
                arr = self.np_exists = _np.array(self.exists, dtype=_np.int64)
            out.append(arr)
            ops += len(self.exists)
        if self.eq:
            cache = self.np_eq
            if cache is None:
                cache = self.np_eq = {}
            key = (fam, actual)
            arr = cache.get(key)
            if arr is None and key in self.eq:
                arr = cache[key] = _np.array(self.eq[key], dtype=_np.int64)
            if arr is not None:
                out.append(arr)
                ops += arr.size
        pool = self.ne_all.get(fam)
        if pool:
            ops += len(pool)
            excluded = self.ne_eq.get((fam, actual))
            if excluded:
                skip = Counter(excluded)
                kept = []
                for fid in pool:
                    if skip.get(fid):
                        skip[fid] -= 1
                        continue
                    kept.append(fid)
                if kept:
                    out.append(_np.array(kept, dtype=_np.int64))
            else:
                cache = self.np_ne_all
                if cache is None:
                    cache = self.np_ne_all = {}
                arr = cache.get(fam)
                if arr is None:
                    arr = cache[fam] = _np.array(pool, dtype=_np.int64)
                out.append(arr)
        if self.ranges:
            for (op, rfam), thresholds in self.ranges.items():
                if rfam != fam:
                    continue
                lo, hi = thresholds.window(op, actual)
                if hi > lo:
                    out.append(thresholds.mirror()[lo:hi])
                    ops += hi - lo
        if fam == "s":
            hits: list[int] = []
            if self.prefix:
                for i in range(min(self.prefix_maxlen, len(actual)) + 1):
                    bucket = self.prefix.get(actual[:i])
                    if bucket:
                        hits.extend(bucket)
            if self.suffix:
                n = len(actual)
                for i in range(min(self.suffix_maxlen, n) + 1):
                    bucket = self.suffix.get(actual[n - i:])
                    if bucket:
                        hits.extend(bucket)
            if self.contains:
                bucket = self.contains.get("")
                if bucket:
                    hits.extend(fid for _value, fid in bucket)
                    ops += len(bucket)
                for char in set(actual):
                    bucket = self.contains.get(char)
                    if not bucket:
                        continue
                    ops += len(bucket)
                    for value, fid in bucket:
                        if value in actual:
                            hits.append(fid)
            if hits:
                ops += len(hits)
                out.append(_np.array(hits, dtype=_np.int64))
        return ops


# Bound on the persistent heavy-signature cache of the pure-python
# match_batch fallback; on overflow the whole cache resets (entries are
# cheap to rebuild and workloads with > this many live shapes churn
# anyway).
_PY_BASE_CACHE_MAX = 128


class PredicateIndex:
    """Counting-algorithm index: ``match`` returns every matching filter.

    Filters are registered with :meth:`add` (which returns a stable id,
    optionally carrying an opaque ``payload`` such as the subscriber
    address) and withdrawn with :meth:`remove`.  :attr:`ops` accumulates
    the candidate predicates examined across all ``match`` calls — the
    indexed counterpart of the naive scan's match-operation count.

    :meth:`match_batch` amortises a batch of notifications: one
    candidate sweep per distinct (attribute, value) pair and — with
    numpy — one vectorised counter accumulation per notification.  Both
    batched paths return exactly what per-notification :meth:`match`
    calls would.
    """

    def __init__(self) -> None:
        self._attributes: dict[str, _AttributeIndex] = {}
        self._filters: dict[int, Filter] = {}
        # Constraint counts indexed by fid (-1 = freed id); the dense
        # array backs both the scalar and the vectorised hot paths.
        self._needs: list[int] = []
        self._payloads: dict[int, Any] = {}
        self._next_id = 0
        self.ops = 0
        # Reusable per-call scratch: counter array + touched-fid list.
        self._counts: list[int] = []
        self._touched: list[int] = []
        self._np_needs = None  # lazily rebuilt numpy mirror of _needs
        # Persistent cross-batch cache for the pure-python match_batch
        # fallback: heavy-key signature -> (base counts, base matches).
        # Entries are read-only once built, so they stay valid until the
        # subscription table changes (add/remove clear the cache).
        self._py_bases: dict[frozenset, tuple[list[int], frozenset]] = {}
        self.batch_cache_hits = 0
        self.batch_cache_misses = 0

    def __len__(self) -> int:
        return len(self._filters)

    def add(self, filter: Filter, payload: Any = None) -> int:
        fid = self._next_id
        self._next_id += 1
        self._filters[fid] = filter
        self._needs.append(len(filter.constraints))
        self._counts.append(0)
        self._payloads[fid] = payload
        for constraint in filter.constraints:
            self._attributes.setdefault(constraint.name, _AttributeIndex()).add(
                constraint, fid
            )
        self._np_needs = None
        self._py_bases.clear()
        return fid

    def remove(self, fid: int) -> Any:
        filter = self._filters.pop(fid)
        self._needs[fid] = -1
        for constraint in filter.constraints:
            self._attributes[constraint.name].remove(constraint, fid)
        self._np_needs = None
        self._py_bases.clear()
        return self._payloads.pop(fid)

    def payload(self, fid: int) -> Any:
        return self._payloads[fid]

    def filter_of(self, fid: int) -> Filter:
        return self._filters[fid]

    def match(self, notification: Notification) -> set[int]:
        """Ids of every registered filter the notification satisfies."""
        counts = self._counts
        touched = self._touched
        ops = 0
        attributes = self._attributes
        for name, actual in notification.items():
            attr = attributes.get(name)
            if attr is not None:
                ops += attr.collect(actual, counts, touched)
        self.ops += ops
        needs = self._needs
        out = set()
        for fid in touched:
            if counts[fid] == needs[fid]:
                out.add(fid)
            counts[fid] = 0
        del touched[:]
        return out

    # ------------------------------------------------------------------
    # Batched matching
    # ------------------------------------------------------------------
    def match_batch(
        self, notifications: list, vectorized: bool | None = None
    ) -> list[set[int]]:
        """``[self.match(n) for n in notifications]``, amortised.

        Candidate collection runs once per distinct (attribute, value)
        pair in the batch.  With numpy (``vectorized`` None/True) the
        per-notification counter accumulation is one ``bincount`` over
        concatenated candidate arrays; the pure-python fallback factors
        the batch's common keys into a shared base counter array and
        only walks each notification's rare keys.  Both are exact.
        """
        if vectorized is None:
            vectorized = _np is not None
        elif vectorized and _np is None:
            raise RuntimeError("vectorized match_batch requires numpy")
        if vectorized:
            return self._match_batch_np(notifications)
        return self._match_batch_py(notifications)

    def _batch_keys(self, notifications: list):
        """Per-notification (attr, key) lists plus batch key frequency."""
        attributes = self._attributes
        freq: dict[tuple, int] = {}
        per_event: list[list] = []
        get = freq.get
        for notification in notifications:
            keys = []
            for name, actual in notification.items():
                attr = attributes.get(name)
                if attr is not None:
                    key = (name, _family(actual), actual)
                    keys.append((attr, key))
                    freq[key] = get(key, 0) + 1
            per_event.append(keys)
        return per_event, freq

    def _match_batch_np(self, notifications: list) -> list[set[int]]:
        n_ids = self._next_id
        needs = self._np_needs
        if needs is None or needs.size != n_ids:
            needs = self._np_needs = _np.array(self._needs, dtype=_np.int64)
        memo: dict[tuple, tuple[list, int]] = {}
        results: list[set[int]] = []
        ops = 0
        concatenate = _np.concatenate
        bincount = _np.bincount
        for notification in notifications:
            arrs: list = []
            for name, actual in notification.items():
                attr = self._attributes.get(name)
                if attr is None:
                    continue
                key = (name, _family(actual), actual)
                cached = memo.get(key)
                if cached is None:
                    sub: list = []
                    key_ops = attr.candidate_arrays(actual, sub)
                    cached = memo[key] = (sub, key_ops)
                arrs.extend(cached[0])
                ops += cached[1]
            if not arrs:
                results.append(set())
                continue
            cat = concatenate(arrs) if len(arrs) > 1 else arrs[0]
            counts = bincount(cat, minlength=n_ids)
            matched = _np.nonzero(counts == needs[: counts.size])[0]
            results.append(set(matched.tolist()))
        self.ops += ops
        return results

    def _match_batch_py(
        self, notifications: list, heavy_min: int = 4
    ) -> list[set[int]]:
        per_event, freq = self._batch_keys(notifications)
        needs = self._needs
        n_ids = self._next_id
        memo: dict[tuple, list[int]] = {}

        def candidates(attr: _AttributeIndex, key: tuple) -> list[int]:
            fids = memo.get(key)
            if fids is None:
                fids = memo[key] = attr.candidate_fids(key[2])
            return fids

        # Keys shared by >= heavy_min notifications are folded into one
        # base counter array per distinct heavy-key signature.  The map
        # persists across calls: steady workloads (same attribute shapes
        # batch after batch) reuse base arrays instead of rebuilding them,
        # until a subscription change clears the cache.
        bases = self._py_bases

        def base_for(sig: frozenset, attrs: dict) -> tuple[list[int], frozenset]:
            entry = bases.get(sig)
            if entry is None:
                self.batch_cache_misses += 1
                if len(bases) >= _PY_BASE_CACHE_MAX:
                    bases.clear()
                counts = [0] * n_ids
                for key in sig:
                    for fid in candidates(attrs[key], key):
                        counts[fid] += 1
                matched = frozenset(
                    fid
                    for key in sig
                    for fid in candidates(attrs[key], key)
                    if counts[fid] == needs[fid]
                )
                entry = bases[sig] = (counts, matched)
            else:
                self.batch_cache_hits += 1
            return entry

        results: list[set[int]] = []
        scratch = [0] * n_ids
        touched: list[int] = []
        ops = 0
        for keys in per_event:
            heavy = {}
            rare = []
            for attr, key in keys:
                ops += len(candidates(attr, key))
                if freq[key] >= heavy_min:
                    heavy[key] = attr
                else:
                    rare.append((attr, key))
            base_counts, base_matched = base_for(frozenset(heavy), heavy)
            del touched[:]
            for attr, key in rare:
                for fid in candidates(attr, key):
                    c = scratch[fid]
                    if not c:
                        touched.append(fid)
                    scratch[fid] = c + 1
            out = set(base_matched)
            for fid in touched:
                if base_counts[fid] + scratch[fid] == needs[fid]:
                    out.add(fid)
                scratch[fid] = 0
            results.append(out)
        self.ops += ops
        return results


# ----------------------------------------------------------------------
# Covering-poset candidate pruning: operator/family bitsets
# ----------------------------------------------------------------------
# Each constraint op × value family gets one bit; EXISTS (valueless) gets
# its own.  For a stored constraint ``ca``, _COVER_NEEDS[ca] is the set
# of probe-constraint bits that could possibly cover it (derived from
# the constraint_covers truth table as a *necessary* condition) — a
# candidate whose probe lacks every such bit on some constrained name
# cannot cover, so the exact filter_covers check is skipped.
_FAMILY_SLOT = {"b": 0, "n": 1, "s": 2}
_OPS_ORDER = (
    Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.PREFIX, Op.SUFFIX, Op.CONTAINS
)
_OP_SLOT = {op: i for i, op in enumerate(_OPS_ORDER)}
_EXISTS_BIT = 1 << (len(_OPS_ORDER) * 3)
_ALL_BITS = (_EXISTS_BIT << 1) - 1


def _constraint_bit(constraint: Constraint) -> int:
    """The presence bit a constraint contributes to its name's mask."""
    if constraint.op is Op.EXISTS:
        return _EXISTS_BIT
    from repro.events.filters import _family_tag

    return 1 << (
        _OP_SLOT[constraint.op] * 3 + _FAMILY_SLOT[_family_tag(constraint.value)]
    )


def _bit(op: Op, family: str) -> int:
    return 1 << (_OP_SLOT[op] * 3 + _FAMILY_SLOT[family])


def _cover_needs(constraint: Constraint) -> int:
    """Probe bits that could cover ``constraint`` (necessary condition).

    Mirrors :func:`~repro.events.covering.constraint_covers`: e.g. a
    numeric ``<`` is only ever covered by numeric ``<``/``<=``/``=``
    constraints, a string range covers nothing, EXISTS covers anything.
    """
    op = constraint.op
    if op is Op.EXISTS:
        return _ALL_BITS
    from repro.events.filters import _family_tag

    fam = _family_tag(constraint.value)
    if op is Op.EQ:
        return _bit(Op.EQ, fam)
    if op is Op.NE:
        mask = _bit(Op.NE, fam) | _bit(Op.EQ, fam)
        if fam == "n":
            mask |= _bit(Op.LT, "n") | _bit(Op.GT, "n")
        return mask
    if op in (Op.LT, Op.LE):
        if fam != "n":
            return 0  # range constraints over strings/bools cover nothing
        return _bit(Op.LT, "n") | _bit(Op.LE, "n") | _bit(Op.EQ, "n")
    if op in (Op.GT, Op.GE):
        if fam != "n":
            return 0
        return _bit(Op.GT, "n") | _bit(Op.GE, "n") | _bit(Op.EQ, "n")
    if op is Op.PREFIX:
        return _bit(Op.PREFIX, "s") | _bit(Op.EQ, "s")
    if op is Op.SUFFIX:
        return _bit(Op.SUFFIX, "s") | _bit(Op.EQ, "s")
    # CONTAINS
    return (
        _bit(Op.CONTAINS, "s")
        | _bit(Op.PREFIX, "s")
        | _bit(Op.SUFFIX, "s")
        | _bit(Op.EQ, "s")
    )


def _name_masks(filter: Filter) -> dict[str, int]:
    """Per-name OR of the filter's constraint presence bits."""
    masks: dict[str, int] = {}
    for constraint in filter.constraints:
        masks[constraint.name] = masks.get(constraint.name, 0) | _constraint_bit(
            constraint
        )
    return masks


class CoveringPoset:
    """The covering partial order over a dynamic set of filters.

    Stored filters are indexed by attribute name; since ``a`` covering
    ``b`` requires ``names(a) ⊆ names(b)``, covering queries touch only
    filters passing that subset test — refined by per-name
    operator/family bitsets (a stored numeric range can only be covered
    by numeric range/equality constraints, etc.) — before the exact
    :func:`filter_covers` verification; answers are identical to the
    pairwise scan's.  Duplicate filters may be stored (e.g. the same
    subscription from two sources); each entry keeps its own id and
    optional payload.  Query results are in insertion (id) order.
    """

    def __init__(self) -> None:
        self._filters: dict[int, Filter] = {}
        self._payloads: dict[int, Any] = {}
        self._name_counts: dict[int, int] = {}
        self._by_name: dict[str, set[int]] = {}
        # Per-entry pruning state: the (name, needed-bits) requirements a
        # probe must meet to possibly cover the entry, and the entry's
        # own per-name presence masks (the mirror-direction test).
        self._cover_reqs: dict[int, tuple] = {}
        self._masks: dict[int, dict[str, int]] = {}
        self._next_id = 0
        self.checks = 0  # exact filter_covers verifications performed

    def __len__(self) -> int:
        return len(self._filters)

    def add(self, filter: Filter, payload: Any = None) -> int:
        pid = self._next_id
        self._next_id += 1
        names = filter.attribute_names()
        self._filters[pid] = filter
        self._payloads[pid] = payload
        self._name_counts[pid] = len(names)
        for name in names:
            self._by_name.setdefault(name, set()).add(pid)
        self._cover_reqs[pid] = tuple(
            (c.name, _cover_needs(c)) for c in filter.constraints
        )
        self._masks[pid] = _name_masks(filter)
        return pid

    def remove(self, pid: int) -> Any:
        filter = self._filters.pop(pid)
        del self._name_counts[pid]
        del self._cover_reqs[pid]
        del self._masks[pid]
        for name in filter.attribute_names():
            members = self._by_name[name]
            members.discard(pid)
            if not members:
                del self._by_name[name]
        return self._payloads.pop(pid)

    def payload(self, pid: int) -> Any:
        return self._payloads[pid]

    def filter_of(self, pid: int) -> Filter:
        return self._filters[pid]

    # -- candidate pruning ---------------------------------------------
    def _subset_candidates(self, names: set[str]) -> list[int]:
        """Stored ids whose attribute names ⊆ ``names`` (could cover), unsorted.

        Callers that promise insertion order sort the result; covers_any
        only needs existence and skips the sort on the hot forward path.
        """
        hits: dict[int, int] = {}
        get = hits.get
        for name in names:
            for pid in self._by_name.get(name, ()):
                hits[pid] = get(pid, 0) + 1
        name_counts = self._name_counts
        return [pid for pid, n in hits.items() if n == name_counts[pid]]

    def _cover_candidates(self, filter: Filter) -> list[int]:
        """Stored ids that could cover ``filter``: name-subset candidates
        whose every constraint sees a compatible-operator probe bit."""
        probe_masks = _name_masks(filter)
        reqs = self._cover_reqs
        out = []
        for pid in self._subset_candidates(set(probe_masks)):
            for name, needed in reqs[pid]:
                if not probe_masks[name] & needed:
                    break
            else:
                out.append(pid)
        return out

    def _superset_candidates(self, names: set[str]) -> list[int]:
        """Stored ids whose attribute names ⊇ ``names`` (could be covered)."""
        need = len(names)
        hits: dict[int, int] = {}
        get = hits.get
        for name in names:
            for pid in self._by_name.get(name, ()):
                hits[pid] = get(pid, 0) + 1
        return sorted(pid for pid, n in hits.items() if n == need)

    # -- queries --------------------------------------------------------
    def covers_any(self, filter: Filter) -> bool:
        """Is ``filter`` covered by some stored filter?"""
        filters = self._filters
        for pid in self._cover_candidates(filter):
            self.checks += 1
            if filter_covers(filters[pid], filter):
                return True
        return False

    def covering(self, filter: Filter) -> list[int]:
        """Every stored filter that covers ``filter``, in insertion order."""
        filters = self._filters
        out = []
        for pid in sorted(self._cover_candidates(filter)):
            self.checks += 1
            if filter_covers(filters[pid], filter):
                out.append(pid)
        return out

    def covered_by(self, filter: Filter) -> list[int]:
        """Every stored filter that ``filter`` covers, in insertion order.

        This is the "what was this removed filter masking?" query: only
        filters the removed one covers can have been suppressed by it.
        """
        filters = self._filters
        probe_reqs = [(c.name, _cover_needs(c)) for c in filter.constraints]
        masks = self._masks
        out = []
        for pid in self._superset_candidates(filter.attribute_names()):
            stored_masks = masks[pid]
            ok = True
            for name, needed in probe_reqs:
                if not stored_masks.get(name, 0) & needed:
                    ok = False
                    break
            if not ok:
                continue
            self.checks += 1
            if filter_covers(filter, filters[pid]):
                out.append(pid)
        return out

    # -- intersection ---------------------------------------------------
    # Intersection cannot be pruned by attribute names the way covering
    # can — two satisfiable filters over *disjoint* attribute sets always
    # intersect — but the name index still splits the store: entries
    # sharing an attribute with the probe need the exact
    # ``filters_intersect`` check, while for the rest intersection
    # reduces to both sides being satisfiable (one cached check each).

    def _sharing_candidates(self, names: set[str]) -> set[int]:
        """Stored ids constraining at least one of ``names``."""
        shared: set[int] = set()
        for name in names:
            shared |= self._by_name.get(name, set())
        return shared

    def intersecting_any(self, filter: Filter) -> bool:
        """Does ``filter`` intersect some stored filter?

        Exactly ``any(filters_intersect(stored, filter))`` over the
        store — the advertisement-pruning question "does this subtree
        produce anything this subscription wants?".
        """
        if not self._filters:
            return False
        if not filter_satisfiable(filter):
            return False
        shared = self._sharing_candidates(filter.attribute_names())
        if len(shared) < len(self._filters):
            # Some stored filter is attribute-disjoint from the probe;
            # any satisfiable one intersects it outright.
            if any(
                filter_satisfiable(f)
                for pid, f in self._filters.items()
                if pid not in shared
            ):
                return True
        filters = self._filters
        for pid in shared:
            self.checks += 1
            if filters_intersect(filters[pid], filter):
                return True
        return False

    def intersecting(self, filter: Filter) -> list[int]:
        """Every stored filter intersecting ``filter``, in insertion order."""
        filters = self._filters
        if not filter_satisfiable(filter):
            return []
        shared = self._sharing_candidates(filter.attribute_names())
        out = []
        for pid, f in filters.items():
            if pid in shared:
                self.checks += 1
                if filters_intersect(f, filter):
                    out.append(pid)
            elif filter_satisfiable(f):
                out.append(pid)
        return sorted(out)
