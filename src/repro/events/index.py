"""Predicate-indexed matching fabric: counting index and covering poset.

The seed matched every notification against every filter with a linear
scan — O(subscriptions × constraints) per publication — and answered
covering questions ("is this filter covered by an already-forwarded
one?", "what was this removed filter masking?") by rescanning whole
filter lists.  Siena-lineage systems get their throughput from two data
structures, reproduced here and shared by every dispatching layer
(:class:`~repro.events.broker.BrokerNode`,
:class:`~repro.events.elvin.ElvinServer`, and the matching engine's
event→pattern pinning):

* :class:`PredicateIndex` — the *counting algorithm*.  Filters are
  decomposed into their attribute constraints and each constraint is
  filed in a per-attribute operator index: hash buckets for ``EQ`` /
  ``NE`` / ``EXISTS``, bisect-sorted threshold arrays for ``LT`` /
  ``LE`` / ``GT`` / ``GE``, and first/last-character-bucketed tables
  for ``PREFIX`` / ``SUFFIX`` / ``CONTAINS``.  Matching a notification
  is one pass over its attributes: every satisfied constraint bumps a
  per-filter counter, and a filter matches when its counter reaches its
  constraint count.  Only predicates that could plausibly be satisfied
  are ever examined.

* :class:`CoveringPoset` — the covering partial order.  ``a`` can only
  cover ``b`` when every attribute ``a`` constrains is also constrained
  by ``b`` (:func:`~repro.events.covering.constraint_covers` requires
  equal names), so candidates are pruned with an attribute-name
  inverted index before the exact
  :func:`~repro.events.covering.filter_covers` check runs.

Both structures are exact: they return precisely what the naive
``Filter.matches`` / ``filter_covers`` scans return — the randomized
equivalence suite in ``tests/test_index_equivalence.py`` enforces this
across all ten operators — so consumers can dispatch through them while
the ``indexed=False`` ablation keeps the naive path measurable
(benchmark E13 reports the speedup).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from typing import Any

from repro.events.covering import filter_covers
from repro.events.filters import (
    Constraint,
    Filter,
    Op,
    filter_satisfiable,
    filters_intersect,
)
from repro.events.model import Notification

_RANGE_OPS = (Op.LT, Op.LE, Op.GT, Op.GE)


def _family(value: Any) -> str:
    """The comparison type family, mirroring ``filters._comparable``.

    Booleans compare only with booleans, numbers with numbers, strings
    with strings; tagging bucket keys with the family keeps ``1`` from
    colliding with ``True`` (equal hashes, different families).
    """
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float)):
        return "n"
    return "s"


class _Thresholds:
    """Parallel (sorted values, filter ids) arrays for one range operator."""

    __slots__ = ("values", "fids")

    def __init__(self) -> None:
        self.values: list = []
        self.fids: list[int] = []

    def insert(self, value: Any, fid: int) -> None:
        at = bisect_right(self.values, value)
        self.values.insert(at, value)
        self.fids.insert(at, fid)

    def remove(self, value: Any, fid: int) -> None:
        at = bisect_left(self.values, value)
        while self.fids[at] != fid:
            at += 1
        del self.values[at]
        del self.fids[at]


class _AttributeIndex:
    """Every constraint on one attribute name, filed by operator class."""

    __slots__ = ("exists", "eq", "ne_all", "ne_eq", "ranges", "prefix", "suffix", "contains")

    def __init__(self) -> None:
        self.exists: list[int] = []
        # (family, value) -> filter ids.  The family tag keeps bool/int apart.
        self.eq: dict[tuple, list[int]] = {}
        self.ne_all: dict[str, list[int]] = {}
        self.ne_eq: dict[tuple, list[int]] = {}
        # (op, family) -> sorted threshold arrays.
        self.ranges: dict[tuple, _Thresholds] = {}
        # first/last character -> [(constraint value, filter id)]; the ""
        # bucket holds empty-string patterns, which match everything.
        self.prefix: dict[str, list[tuple[str, int]]] = {}
        self.suffix: dict[str, list[tuple[str, int]]] = {}
        self.contains: dict[str, list[tuple[str, int]]] = {}

    def add(self, constraint: Constraint, fid: int) -> None:
        op, value = constraint.op, constraint.value
        if op is Op.EXISTS:
            self.exists.append(fid)
        elif op is Op.EQ:
            self.eq.setdefault((_family(value), value), []).append(fid)
        elif op is Op.NE:
            fam = _family(value)
            self.ne_all.setdefault(fam, []).append(fid)
            self.ne_eq.setdefault((fam, value), []).append(fid)
        elif op in _RANGE_OPS:
            self.ranges.setdefault((op, _family(value)), _Thresholds()).insert(value, fid)
        elif op is Op.PREFIX:
            self.prefix.setdefault(value[:1], []).append((value, fid))
        elif op is Op.SUFFIX:
            self.suffix.setdefault(value[-1:], []).append((value, fid))
        else:  # CONTAINS
            self.contains.setdefault(value[:1], []).append((value, fid))

    def remove(self, constraint: Constraint, fid: int) -> None:
        op, value = constraint.op, constraint.value
        if op is Op.EXISTS:
            self.exists.remove(fid)
        elif op is Op.EQ:
            self.eq[(_family(value), value)].remove(fid)
        elif op is Op.NE:
            fam = _family(value)
            self.ne_all[fam].remove(fid)
            self.ne_eq[(fam, value)].remove(fid)
        elif op in _RANGE_OPS:
            self.ranges[(op, _family(value))].remove(value, fid)
        elif op is Op.PREFIX:
            self.prefix[value[:1]].remove((value, fid))
        elif op is Op.SUFFIX:
            self.suffix[value[-1:]].remove((value, fid))
        else:
            self.contains[value[:1]].remove((value, fid))

    def collect(self, actual: Any, counts: dict[int, int]) -> int:
        """Bump ``counts`` for every constraint ``actual`` satisfies.

        Returns the number of candidate predicates examined (the
        indexed analogue of the naive scan's match operations).
        """
        get = counts.get
        ops = 0
        fam = _family(actual)

        for fid in self.exists:
            counts[fid] = get(fid, 0) + 1
        ops += len(self.exists)

        hits = self.eq.get((fam, actual))
        if hits:
            for fid in hits:
                counts[fid] = get(fid, 0) + 1
            ops += len(hits)

        pool = self.ne_all.get(fam)
        if pool:
            ops += len(pool)
            excluded = self.ne_eq.get((fam, actual))
            if excluded:
                skip = Counter(excluded)
                for fid in pool:
                    if skip.get(fid):
                        skip[fid] -= 1
                        continue
                    counts[fid] = get(fid, 0) + 1
            else:
                for fid in pool:
                    counts[fid] = get(fid, 0) + 1

        if self.ranges:
            for (op, rfam), thresholds in self.ranges.items():
                if rfam != fam:
                    continue
                values = thresholds.values
                if op is Op.LT:  # actual < threshold
                    lo, hi = bisect_right(values, actual), len(values)
                elif op is Op.LE:  # actual <= threshold
                    lo, hi = bisect_left(values, actual), len(values)
                elif op is Op.GT:  # threshold < actual
                    lo, hi = 0, bisect_left(values, actual)
                else:  # GE: threshold <= actual
                    lo, hi = 0, bisect_right(values, actual)
                for fid in thresholds.fids[lo:hi]:
                    counts[fid] = get(fid, 0) + 1
                ops += hi - lo

        if fam == "s":
            if self.prefix:
                for bucket_key in ("", actual[:1]) if actual else ("",):
                    bucket = self.prefix.get(bucket_key)
                    if not bucket:
                        continue
                    ops += len(bucket)
                    for value, fid in bucket:
                        if actual.startswith(value):
                            counts[fid] = get(fid, 0) + 1
            if self.suffix:
                for bucket_key in ("", actual[-1:]) if actual else ("",):
                    bucket = self.suffix.get(bucket_key)
                    if not bucket:
                        continue
                    ops += len(bucket)
                    for value, fid in bucket:
                        if actual.endswith(value):
                            counts[fid] = get(fid, 0) + 1
            if self.contains:
                bucket = self.contains.get("")
                if bucket:
                    ops += len(bucket)
                    for _value, fid in bucket:
                        counts[fid] = get(fid, 0) + 1  # "" is in every string
                for char in set(actual):
                    bucket = self.contains.get(char)
                    if not bucket:
                        continue
                    ops += len(bucket)
                    for value, fid in bucket:
                        if value in actual:
                            counts[fid] = get(fid, 0) + 1
        return ops


class PredicateIndex:
    """Counting-algorithm index: ``match`` returns every matching filter.

    Filters are registered with :meth:`add` (which returns a stable id,
    optionally carrying an opaque ``payload`` such as the subscriber
    address) and withdrawn with :meth:`remove`.  :attr:`ops` accumulates
    the candidate predicates examined across all ``match`` calls — the
    indexed counterpart of the naive scan's match-operation count.
    """

    def __init__(self) -> None:
        self._attributes: dict[str, _AttributeIndex] = {}
        self._filters: dict[int, Filter] = {}
        self._needs: dict[int, int] = {}
        self._payloads: dict[int, Any] = {}
        self._next_id = 0
        self.ops = 0

    def __len__(self) -> int:
        return len(self._filters)

    def add(self, filter: Filter, payload: Any = None) -> int:
        fid = self._next_id
        self._next_id += 1
        self._filters[fid] = filter
        self._needs[fid] = len(filter.constraints)
        self._payloads[fid] = payload
        for constraint in filter.constraints:
            self._attributes.setdefault(constraint.name, _AttributeIndex()).add(
                constraint, fid
            )
        return fid

    def remove(self, fid: int) -> Any:
        filter = self._filters.pop(fid)
        del self._needs[fid]
        for constraint in filter.constraints:
            self._attributes[constraint.name].remove(constraint, fid)
        return self._payloads.pop(fid)

    def payload(self, fid: int) -> Any:
        return self._payloads[fid]

    def filter_of(self, fid: int) -> Filter:
        return self._filters[fid]

    def match(self, notification: Notification) -> set[int]:
        """Ids of every registered filter the notification satisfies."""
        counts: dict[int, int] = {}
        ops = 0
        attributes = self._attributes
        for name, actual in notification.items():
            attr = attributes.get(name)
            if attr is not None:
                ops += attr.collect(actual, counts)
        self.ops += ops
        needs = self._needs
        return {fid for fid, count in counts.items() if count == needs[fid]}


class CoveringPoset:
    """The covering partial order over a dynamic set of filters.

    Stored filters are indexed by attribute name; since ``a`` covering
    ``b`` requires ``names(a) ⊆ names(b)``, covering queries touch only
    filters passing that subset test before the exact
    :func:`filter_covers` verification — answers are identical to the
    pairwise scan's.  Duplicate filters may be stored (e.g. the same
    subscription from two sources); each entry keeps its own id and
    optional payload.  Query results are in insertion (id) order.
    """

    def __init__(self) -> None:
        self._filters: dict[int, Filter] = {}
        self._payloads: dict[int, Any] = {}
        self._name_counts: dict[int, int] = {}
        self._by_name: dict[str, set[int]] = {}
        self._next_id = 0
        self.checks = 0  # exact filter_covers verifications performed

    def __len__(self) -> int:
        return len(self._filters)

    def add(self, filter: Filter, payload: Any = None) -> int:
        pid = self._next_id
        self._next_id += 1
        names = filter.attribute_names()
        self._filters[pid] = filter
        self._payloads[pid] = payload
        self._name_counts[pid] = len(names)
        for name in names:
            self._by_name.setdefault(name, set()).add(pid)
        return pid

    def remove(self, pid: int) -> Any:
        filter = self._filters.pop(pid)
        del self._name_counts[pid]
        for name in filter.attribute_names():
            members = self._by_name[name]
            members.discard(pid)
            if not members:
                del self._by_name[name]
        return self._payloads.pop(pid)

    def payload(self, pid: int) -> Any:
        return self._payloads[pid]

    def filter_of(self, pid: int) -> Filter:
        return self._filters[pid]

    # -- candidate pruning ---------------------------------------------
    def _subset_candidates(self, names: set[str]) -> list[int]:
        """Stored ids whose attribute names ⊆ ``names`` (could cover), unsorted.

        Callers that promise insertion order sort the result; covers_any
        only needs existence and skips the sort on the hot forward path.
        """
        hits: dict[int, int] = {}
        get = hits.get
        for name in names:
            for pid in self._by_name.get(name, ()):
                hits[pid] = get(pid, 0) + 1
        name_counts = self._name_counts
        return [pid for pid, n in hits.items() if n == name_counts[pid]]

    def _superset_candidates(self, names: set[str]) -> list[int]:
        """Stored ids whose attribute names ⊇ ``names`` (could be covered)."""
        need = len(names)
        hits: dict[int, int] = {}
        get = hits.get
        for name in names:
            for pid in self._by_name.get(name, ()):
                hits[pid] = get(pid, 0) + 1
        return sorted(pid for pid, n in hits.items() if n == need)

    # -- queries --------------------------------------------------------
    def covers_any(self, filter: Filter) -> bool:
        """Is ``filter`` covered by some stored filter?"""
        filters = self._filters
        for pid in self._subset_candidates(filter.attribute_names()):
            self.checks += 1
            if filter_covers(filters[pid], filter):
                return True
        return False

    def covering(self, filter: Filter) -> list[int]:
        """Every stored filter that covers ``filter``, in insertion order."""
        filters = self._filters
        out = []
        for pid in sorted(self._subset_candidates(filter.attribute_names())):
            self.checks += 1
            if filter_covers(filters[pid], filter):
                out.append(pid)
        return out

    def covered_by(self, filter: Filter) -> list[int]:
        """Every stored filter that ``filter`` covers, in insertion order.

        This is the "what was this removed filter masking?" query: only
        filters the removed one covers can have been suppressed by it.
        """
        filters = self._filters
        out = []
        for pid in self._superset_candidates(filter.attribute_names()):
            self.checks += 1
            if filter_covers(filter, filters[pid]):
                out.append(pid)
        return out

    # -- intersection ---------------------------------------------------
    # Intersection cannot be pruned by attribute names the way covering
    # can — two satisfiable filters over *disjoint* attribute sets always
    # intersect — but the name index still splits the store: entries
    # sharing an attribute with the probe need the exact
    # ``filters_intersect`` check, while for the rest intersection
    # reduces to both sides being satisfiable (one cached check each).

    def _sharing_candidates(self, names: set[str]) -> set[int]:
        """Stored ids constraining at least one of ``names``."""
        shared: set[int] = set()
        for name in names:
            shared |= self._by_name.get(name, set())
        return shared

    def intersecting_any(self, filter: Filter) -> bool:
        """Does ``filter`` intersect some stored filter?

        Exactly ``any(filters_intersect(stored, filter))`` over the
        store — the advertisement-pruning question "does this subtree
        produce anything this subscription wants?".
        """
        if not self._filters:
            return False
        if not filter_satisfiable(filter):
            return False
        shared = self._sharing_candidates(filter.attribute_names())
        if len(shared) < len(self._filters):
            # Some stored filter is attribute-disjoint from the probe;
            # any satisfiable one intersects it outright.
            if any(
                filter_satisfiable(f)
                for pid, f in self._filters.items()
                if pid not in shared
            ):
                return True
        filters = self._filters
        for pid in shared:
            self.checks += 1
            if filters_intersect(filters[pid], filter):
                return True
        return False

    def intersecting(self, filter: Filter) -> list[int]:
        """Every stored filter intersecting ``filter``, in insertion order."""
        filters = self._filters
        if not filter_satisfiable(filter):
            return []
        shared = self._sharing_candidates(filter.attribute_names())
        out = []
        for pid, f in filters.items():
            if pid in shared:
                self.checks += 1
                if filters_intersect(f, filter):
                    out.append(pid)
            elif filter_satisfiable(f):
                out.append(pid)
        return sorted(out)
