"""Latency-aware redundant-link placement for broker meshes.

``build_broker_mesh`` turns the tree overlay into a mesh by adding
chords.  Where a chord lands decides what it buys: every tree edge on
the cycle a chord closes becomes survivable (the overlay stays connected
if that edge dies), so a chord "protects" exactly the tree edges on the
tree path between its endpoints.  Uniform-random chords — the original
policy, kept as the ``placement="random"`` ablation — routinely burn
their budget on short cycles that re-protect the same few edges while
leaving long latency detours.

:func:`plan_extra_links` spends the same budget greedily: each step adds
the chord protecting the most not-yet-protected tree edges, among
candidates whose direct latency stays within ``stretch_bound`` times the
mean tree-link latency (a chord from Scotland to Australia protects a
lot of edges, but every message re-routed over it pays its length).
Delays come from the latency model's jitter-free ``typical_s`` estimate,
so the plan is a pure function of broker positions — same positions,
same plan.

The module also carries the graph metrics the E5 placement phase
reports: remaining :func:`bridges` (tree edges no chord protects — each
one a single point of partition) and :func:`detour_stretch` (how much
longer the best detour around a protected edge is than the edge it
replaces).
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.geo import Position
    from repro.net.latency import LatencyModel

# Chord planning prices links by payload-sized messages, not heartbeats.
PLAN_MESSAGE_BYTES = 256


def typical_delay(
    latency: "LatencyModel", a: "Position", b: "Position",
    size_bytes: int = PLAN_MESSAGE_BYTES,
) -> float:
    """Deterministic delay estimate between two positions.

    Prefers the model's jitter-free ``typical_s``; models without one
    are sampled with a fixed-seed rng so planning stays deterministic.
    """
    typical = getattr(latency, "typical_s", None)
    if typical is not None:
        return typical(a, b, size_bytes)
    return latency.delay(a, b, size_bytes, random.Random(0))


def tree_paths(
    count: int, tree_edges: list[tuple[int, int]]
) -> dict[tuple[int, int], frozenset]:
    """Tree-path edge sets for every node pair, keyed ``(i, j)`` with
    ``i < j``; each edge is a ``frozenset({u, v})``."""
    adjacency: dict[int, list[int]] = {i: [] for i in range(count)}
    for u, v in tree_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    paths: dict[tuple[int, int], frozenset] = {}
    for root in range(count):
        # BFS from root, recording each node's path-from-root edge set.
        seen: dict[int, frozenset] = {root: frozenset()}
        queue = [root]
        while queue:
            node = queue.pop(0)
            for neighbour in adjacency[node]:
                if neighbour in seen:
                    continue
                seen[neighbour] = seen[node] | {frozenset((node, neighbour))}
                queue.append(neighbour)
        for node, edges in seen.items():
            if root < node:
                paths[(root, node)] = edges
    return paths


def plan_extra_links(
    positions: "list[Position]",
    tree_edges: list[tuple[int, int]],
    count: int,
    latency: "LatencyModel",
    stretch_bound: float = 3.0,
) -> list[tuple[int, int]]:
    """Choose ``count`` chords for the tree, greedily and deterministically.

    Each step picks the candidate (non-adjacent pair) protecting the
    most not-yet-protected tree edges, restricted to chords whose direct
    typical delay is at most ``stretch_bound`` times the mean tree-link
    delay; ties break toward the lower-latency chord, then the lower
    pair index.  Once every tree edge is protected (or no admissible
    chord protects anything new), remaining budget goes to the shortest
    admissible chords — extra parallel capacity beats none.  If the
    bound admits nothing, it is ignored for that pick rather than
    returning fewer links than asked.
    """
    n = len(positions)
    existing = {frozenset(e) for e in tree_edges}
    paths = tree_paths(n, tree_edges)
    delays = {
        pair: typical_delay(latency, positions[pair[0]], positions[pair[1]])
        for pair in paths
    }
    tree_delays = [delays[(min(u, v), max(u, v))] for u, v in tree_edges]
    mean_link = sum(tree_delays) / len(tree_delays) if tree_delays else 0.0
    budget = stretch_bound * mean_link
    candidates = [
        pair for pair in sorted(paths) if frozenset(pair) not in existing
    ]
    chosen: list[tuple[int, int]] = []
    covered: set[frozenset] = set()
    while len(chosen) < count and candidates:
        best = None
        best_key = None
        for pair in candidates:
            gain = len(paths[pair] - covered)
            admissible = delays[pair] <= budget
            # Rank: admissible beats not, then protection gain, then
            # shorter chord, then stable pair order.
            key = (admissible, gain, -delays[pair], (-pair[0], -pair[1]))
            if best_key is None or key > best_key:
                best, best_key = pair, key
        chosen.append(best)
        covered |= paths[best]
        candidates.remove(best)
    return chosen


def protected_edges(
    chords: list[tuple[int, int]],
    paths: dict[tuple[int, int], frozenset],
) -> set[frozenset]:
    """Tree edges survivable under the given chords (union of their
    closed cycles' tree segments)."""
    covered: set[frozenset] = set()
    for i, j in chords:
        covered |= paths[(min(i, j), max(i, j))]
    return covered


def bridges(count: int, edges: list[tuple[int, int]]) -> set[frozenset]:
    """Bridge edges of the graph — each one a single point of partition.

    Iterative Tarjan low-link; an edge is a bridge iff no other path
    connects its endpoints, i.e. the mesh still partitions if it dies.
    """
    adjacency: dict[int, list[tuple[int, int]]] = {i: [] for i in range(count)}
    for index, (u, v) in enumerate(edges):
        adjacency[u].append((v, index))
        adjacency[v].append((u, index))
    visited: dict[int, int] = {}
    low: dict[int, int] = {}
    result: set[frozenset] = set()
    counter = 0
    for start in range(count):
        if start in visited:
            continue
        stack: list[tuple[int, int, int]] = [(start, -1, 0)]
        while stack:
            node, via_edge, child_at = stack[-1]
            if child_at == 0:
                visited[node] = low[node] = counter
                counter += 1
            if child_at < len(adjacency[node]):
                stack[-1] = (node, via_edge, child_at + 1)
                neighbour, edge_index = adjacency[node][child_at]
                if edge_index == via_edge:
                    continue
                if neighbour in visited:
                    low[node] = min(low[node], visited[neighbour])
                else:
                    stack.append((neighbour, edge_index, 0))
            else:
                stack.pop()
                if stack:
                    parent = stack[-1][0]
                    low[parent] = min(low[parent], low[node])
                    if low[node] > visited[parent]:
                        result.add(frozenset((parent, node)))
    return result


def detour_stretch(
    positions: "list[Position]",
    edges: list[tuple[int, int]],
    latency: "LatencyModel",
) -> dict[frozenset, float]:
    """Per-edge latency stretch of the best detour around that edge.

    For each non-bridge edge ``{u, v}``: shortest-path delay from ``u``
    to ``v`` with the edge removed, divided by the direct edge delay —
    the factor traffic pays while the self-healing overlay routes around
    the kill.  Bridge edges (no detour exists) are omitted.
    """
    n = len(positions)
    weights = {
        frozenset((u, v)): typical_delay(latency, positions[u], positions[v])
        for u, v in edges
    }
    adjacency: dict[int, list[int]] = {i: [] for i in range(n)}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    stretches: dict[frozenset, float] = {}
    for u, v in edges:
        removed = frozenset((u, v))
        # Dijkstra from u to v, skipping the removed edge.
        dist = {u: 0.0}
        heap = [(0.0, u)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == v:
                break
            if d > dist.get(node, float("inf")):
                continue
            for neighbour in adjacency[node]:
                edge = frozenset((node, neighbour))
                if edge == removed:
                    continue
                nd = d + weights[edge]
                if nd < dist.get(neighbour, float("inf")):
                    dist[neighbour] = nd
                    heapq.heappush(heap, (nd, neighbour))
        if v in dist:
            stretches[removed] = dist[v] / max(weights[removed], 1e-12)
    return stretches
