"""Sharded subscription matching: partitioned indexes behind a thin router.

The monolithic :class:`~repro.events.index.PredicateIndex` pays for the
*whole* population on every event: range thresholds, EXISTS lists and NE
pools are keyed only by attribute name, so an event carrying
``strength`` sweeps every subscription constraining ``strength`` —
regardless of the event's subject.  This module partitions the
subscription space by the event subject (the ``type`` attribute, the
same key rendezvous routing hashes) so each shard owns its own
``PredicateIndex`` over roughly ``1/n`` of the population, and a
publication visits **exactly one** shard:

* A filter that pins the partition attribute with an ``EQ`` constraint
  is stored only on the owner shard of that value (consistent hashing
  over :func:`~repro.events.rendezvous.canonical_subject`, so ``2`` and
  ``2.0`` land together exactly as matching equality folds them).
* Every other filter — no partition constraint, or a non-``EQ`` one —
  is a *wildcard* with respect to the partition and is replicated to
  all shards.  Replication is the correctness backstop: whichever shard
  an event visits, the wildcards are there.
* A publication routes to the owner shard of its subject value, or to a
  dedicated absent-subject bucket when the attribute is missing (only
  wildcards can match such an event, and those are everywhere).

Every matching subscription is therefore found on the one visited shard,
once — no cross-shard deduplication, and deliveries are identical to the
monolith by construction (the randomized equivalence suites pin this).

Three layers share the plan:

* :class:`ShardedSubscriptionIndex` — an in-process drop-in for
  ``PredicateIndex`` (``add``/``remove``/``match``/``match_batch``/
  ``payload``), selected by ``BrokerNode(shards=n)``.
* :class:`ShardRouter` + :class:`ShardEndpoint` — the message-passing
  fleet: a thin front that fans ``Publish``/``PublishBatch`` to only
  the shard whose partition can match, with consistent-hash client
  placement (each client has a *home* shard responsible for its
  deliveries).  Both are transport-agnostic: the same objects run on
  the simulated kernel (``repro.simulation.transport.SimTransport``)
  and on real sockets (``repro.net.transport.AsyncioTransport``).
* :class:`FleetClient` — a minimal client for either transport.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from repro.events.broker import (
    NotifyBatch,
    Publish,
    PublishBatch,
    Subscribe,
    Unsubscribe,
)
from repro.events.filters import Filter, Op
from repro.events.index import PredicateIndex
from repro.events.model import Notification
from repro.events.rendezvous import canonical_subject

Address = Hashable

# Canonical token for "the event has no partition attribute".  Family
# tags from canonical_subject are single letters followed by ':', so no
# real subject canonicalises to this.
_ABSENT = "\x00absent"


def _hash64(text: str) -> int:
    """Stable 64-bit hash (process-independent, unlike ``hash``)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class ShardPlan:
    """Consistent-hash placement of subjects and clients onto shards.

    The ring carries ``vnodes`` virtual points per shard so both subject
    ownership and client homes stay balanced, and growing the shard
    count moves only ``~1/n`` of the keys.  The plan is a pure function
    of ``(n_shards, partition_attr, vnodes)``: every router, shard and
    client can compute placement locally with no coordination.
    """

    def __init__(
        self, n_shards: int, partition_attr: str = "type", vnodes: int = 32
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.partition_attr = partition_attr
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((_hash64(f"shard:{shard}:{v}"), shard))
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_shards = [p[1] for p in points]
        self._owner_cache: dict[str, int] = {}

    def _locate(self, h: int) -> int:
        i = bisect.bisect_right(self._ring_keys, h)
        if i == len(self._ring_keys):
            i = 0
        return self._ring_shards[i]

    def owner(self, canon: str) -> int:
        """Owner shard of one canonical subject string."""
        shard = self._owner_cache.get(canon)
        if shard is None:
            shard = self._locate(_hash64("subject:" + canon))
            self._owner_cache[canon] = shard
        return shard

    def shard_of_value(self, value: Any) -> int:
        """Owner shard of one partition-attribute value."""
        return self.owner(canonical_subject(value))

    def shard_of_event(self, notification: Notification) -> int:
        """The single shard a publication must visit."""
        value = notification.get(self.partition_attr)
        if value is None and self.partition_attr not in notification:
            return self.owner(_ABSENT)
        return self.owner(canonical_subject(value))

    def shard_of_filter(self, filter: Filter) -> int | None:
        """Owner shard of a filter, or ``None`` for wildcards.

        ``None`` means "replicate to every shard": the filter has no
        ``EQ`` constraint on the partition attribute, so it could match
        events routed to any shard.  A filter with *several* partition
        equalities can only match events satisfying all of them, so any
        one pins a sound owner (mirrors ``rendezvous.filter_key``).
        """
        name = self.partition_attr
        for constraint in filter.constraints:
            if constraint.name == name and constraint.op is Op.EQ:
                return self.owner(canonical_subject(constraint.value))
        return None

    def home(self, client: Address) -> int:
        """The shard responsible for delivering to ``client``.

        Consistent-hash client placement spreads delivery fan-out work
        across the fleet instead of funnelling it through the router.
        """
        return self._locate(_hash64(f"client:{client!r}"))


class ShardedSubscriptionIndex:
    """Drop-in for :class:`PredicateIndex`, partitioned across shards.

    Same surface — ``add(filter, payload) -> rid``, ``remove(rid)``,
    ``match(n) -> set[rid]``, ``match_batch``, ``payload(rid)``,
    ``filter_of(rid)`` — so ``BrokerNode`` swaps it in unchanged.  Each
    shard is a private ``PredicateIndex``; a match visits exactly one,
    so per-event candidate work (threshold windows, EXISTS lists, NE
    pools) shrinks by roughly the shard count on balanced workloads.
    """

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan
        self.shards = [PredicateIndex() for _ in range(plan.n_shards)]
        # rid -> ((shard, fid), ...); one pair for pinned filters, one
        # per shard for replicated wildcards.
        self._entries: dict[int, tuple[tuple[int, int], ...]] = {}
        self._filters: dict[int, Filter] = {}
        self._payloads: dict[int, Any] = {}
        # Per-shard reverse map: local fid -> global rid.  A dense list,
        # not a dict — PredicateIndex allocates fids monotonically, and
        # this lookup runs once per *match*, the hottest spot here.
        # Removed fids leave a stale slot that no match can return.
        self._rid_of: list[list[int]] = [[] for _ in range(plan.n_shards)]
        self._next_rid = 0
        self.replicated = 0  # live wildcard registrations

    def __len__(self) -> int:
        return len(self._filters)

    @property
    def ops(self) -> int:
        """Total candidate-inspection work across all shards."""
        return sum(shard.ops for shard in self.shards)

    def add(self, filter: Filter, payload: Any = None) -> int:
        rid = self._next_rid
        self._next_rid += 1
        target = self.plan.shard_of_filter(filter)
        if target is None:
            shard_ids: Iterable[int] = range(self.plan.n_shards)
            self.replicated += 1
        else:
            shard_ids = (target,)
        entries = []
        for sid in shard_ids:
            fid = self.shards[sid].add(filter, payload=payload)
            rid_of = self._rid_of[sid]
            assert fid == len(rid_of)
            rid_of.append(rid)
            entries.append((sid, fid))
        self._entries[rid] = tuple(entries)
        self._filters[rid] = filter
        self._payloads[rid] = payload
        return rid

    def remove(self, rid: int) -> Any:
        entries = self._entries.pop(rid)
        if len(entries) > 1:
            self.replicated -= 1
        for sid, fid in entries:
            self.shards[sid].remove(fid)
        del self._filters[rid]
        return self._payloads.pop(rid)

    def payload(self, rid: int) -> Any:
        return self._payloads[rid]

    def filter_of(self, rid: int) -> Filter:
        return self._filters[rid]

    def match(self, notification: Notification) -> set[int]:
        sid = self.plan.shard_of_event(notification)
        rid_of = self._rid_of[sid]
        return {rid_of[fid] for fid in self.shards[sid].match(notification)}

    def match_batch(
        self, notifications: list, vectorized: bool | None = None
    ) -> list[set[int]]:
        groups: dict[int, list[int]] = {}
        for i, notification in enumerate(notifications):
            groups.setdefault(self.plan.shard_of_event(notification), []).append(i)
        results: list[set[int] | None] = [None] * len(notifications)
        for sid, positions in groups.items():
            rid_of = self._rid_of[sid]
            matched = self.shards[sid].match_batch(
                [notifications[i] for i in positions], vectorized=vectorized
            )
            for i, fids in zip(positions, matched):
                results[i] = {rid_of[fid] for fid in fids}
        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Fleet plane: router + shard endpoints over an abstract transport
# ----------------------------------------------------------------------
# The fleet speaks the broker wire dataclasses (Subscribe, Publish,
# PublishBatch, NotifyBatch, ...) plus four shard-plane envelopes:


@dataclass(slots=True)
class Routed:
    """Router->shard envelope preserving the originating client."""

    source: Address
    message: Any


@dataclass(slots=True)
class Attach:
    """Tell a shard it is the home (delivery owner) of ``client``."""

    client: Address


@dataclass(slots=True)
class Detach:
    client: Address


@dataclass(slots=True)
class Deliver:
    """Matching shard -> home shard: notifications grouped per client.

    ``items`` is ``((client, (notification, ...)), ...)``.  The home
    shard unwraps each group into a client-facing :class:`NotifyBatch`.
    """

    items: tuple


SendFn = Callable[[Address, Address, Any], None]


class ShardEndpoint:
    """One worker shard: a partition of the subscription space.

    Holds its own :class:`PredicateIndex`, matches the publications the
    router fans to it, and groups matched deliveries by each subscriber's
    *home* shard (``plan.home``) so fan-out work spreads over the fleet.
    Transport-agnostic: ``send(src, dst, payload)`` is the only effect.
    """

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        addr: Address,
        send: SendFn,
        shard_addrs: dict[int, Address],
    ) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.addr = addr
        self._send = send
        self.shard_addrs = shard_addrs
        self.index = PredicateIndex()
        self._entry_ids: dict[tuple[Address, Filter], int] = {}
        self.local_clients: set[Address] = set()
        self.notifications_processed = 0
        self.notifications_delivered = 0

    def handle(self, src: Address, payload: Any) -> None:
        if isinstance(payload, Routed):
            self._handle_routed(payload.source, payload.message)
        elif isinstance(payload, Attach):
            self.local_clients.add(payload.client)
        elif isinstance(payload, Detach):
            self.local_clients.discard(payload.client)
        elif isinstance(payload, Deliver):
            for client, notifications in payload.items:
                if client in self.local_clients:
                    self.notifications_delivered += len(notifications)
                    self._send(self.addr, client, NotifyBatch(tuple(notifications)))

    def _handle_routed(self, source: Address, message: Any) -> None:
        if isinstance(message, Subscribe):
            key = (source, message.filter)
            if key not in self._entry_ids:
                self._entry_ids[key] = self.index.add(message.filter, payload=source)
        elif isinstance(message, Unsubscribe):
            fid = self._entry_ids.pop((source, message.filter), None)
            if fid is not None:
                self.index.remove(fid)
        elif isinstance(message, Publish):
            self._match_batch(source, [(message.notification, message.pub_id)])
        elif isinstance(message, PublishBatch):
            self._match_batch(source, message.items)

    def _match_batch(self, source: Address, items: Iterable[tuple]) -> None:
        notifications = [notification for notification, _ in items]
        if not notifications:
            return
        self.notifications_processed += len(notifications)
        matched_sets = self.index.match_batch(notifications)
        payload = self.index.payload
        per_client: dict[Address, list[Notification]] = {}
        for notification, fids in zip(notifications, matched_sets):
            if not fids:
                continue
            for client in {payload(fid) for fid in fids}:
                if client == source:
                    continue
                per_client.setdefault(client, []).append(notification)
        if not per_client:
            return
        # Group deliveries by the subscriber's home shard; local ones
        # short-circuit without a wire hop.
        per_home: dict[int, list[tuple[Address, tuple]]] = {}
        for client, batch in per_client.items():
            per_home.setdefault(self.plan.home(client), []).append(
                (client, tuple(batch))
            )
        for home, groups in per_home.items():
            deliver = Deliver(tuple(groups))
            if home == self.shard_id:
                self.handle(self.addr, deliver)
            else:
                self._send(self.addr, self.shard_addrs[home], deliver)


class ShardRouter:
    """The thin front of the sharded broker fleet.

    Clients address the router like a broker; it owns no subscription
    state beyond attachment bookkeeping.  Control messages fan to the
    owner shard (or all shards for wildcards); each publication fans to
    **exactly one** shard — the owner of its subject partition — so the
    fleet's total matching work per event is one shard's worth.
    """

    def __init__(
        self,
        plan: ShardPlan,
        addr: Address,
        send: SendFn,
        shard_addrs: dict[int, Address],
    ) -> None:
        self.plan = plan
        self.addr = addr
        self._send = send
        self.shard_addrs = shard_addrs
        self.clients: set[Address] = set()
        self.messages_routed = 0

    def attach_client(self, client: Address) -> None:
        self.clients.add(client)
        home = self.plan.home(client)
        self._send(self.addr, self.shard_addrs[home], Attach(client))

    def detach_client(self, client: Address) -> None:
        self.clients.discard(client)
        home = self.plan.home(client)
        self._send(self.addr, self.shard_addrs[home], Detach(client))

    def _fan_control(self, source: Address, message: Any, filter: Filter) -> None:
        target = self.plan.shard_of_filter(filter)
        routed = Routed(source, message)
        if target is None:
            for addr in self.shard_addrs.values():
                self._send(self.addr, addr, routed)
        else:
            self._send(self.addr, self.shard_addrs[target], routed)

    def handle(self, src: Address, payload: Any) -> None:
        self.messages_routed += 1
        if isinstance(payload, (Subscribe, Unsubscribe)):
            self._fan_control(src, payload, payload.filter)
        elif isinstance(payload, Publish):
            sid = self.plan.shard_of_event(payload.notification)
            self._send(self.addr, self.shard_addrs[sid], Routed(src, payload))
        elif isinstance(payload, PublishBatch):
            groups: dict[int, list[tuple]] = {}
            for item in payload.items:
                sid = self.plan.shard_of_event(item[0])
                groups.setdefault(sid, []).append(item)
            for sid, items in groups.items():
                self._send(
                    self.addr,
                    self.shard_addrs[sid],
                    Routed(src, PublishBatch(tuple(items))),
                )


class FleetClient:
    """Minimal pub/sub client for the sharded fleet, transport-agnostic.

    Mirrors the :class:`~repro.events.broker.SienaClient` surface the
    tests exercise (subscribe / unsubscribe / publish / publish_batch /
    ``received``) but speaks to a :class:`ShardRouter` over a plain
    ``send`` callable, so the same client code runs on the simulated
    kernel and on real asyncio sockets.
    """

    def __init__(self, addr: Address, router_addr: Address, send: SendFn) -> None:
        self.addr = addr
        self.router_addr = router_addr
        self._send = send
        self.received: list[Notification] = []
        self._pub_seq = 0

    def handle(self, src: Address, payload: Any) -> None:
        if isinstance(payload, NotifyBatch):
            self.received.extend(payload.notifications)

    def subscribe(self, filter: Filter) -> None:
        self._send(self.addr, self.router_addr, Subscribe(filter))

    def unsubscribe(self, filter: Filter) -> None:
        self._send(self.addr, self.router_addr, Unsubscribe(filter))

    def publish(self, notification: Notification) -> None:
        pub_id = (self.addr, self._pub_seq)
        self._pub_seq += 1
        self._send(self.addr, self.router_addr, Publish(notification, pub_id))

    def publish_batch(self, notifications: Iterable[Notification]) -> None:
        items = []
        for notification in notifications:
            items.append((notification, (self.addr, self._pub_seq)))
            self._pub_seq += 1
        if items:
            self._send(self.addr, self.router_addr, PublishBatch(tuple(items)))


def build_shard_fleet(
    plan: ShardPlan,
    send: SendFn,
    router_addr: Address = "router",
    shard_addr: Callable[[int], Address] = "shard-{}".format,
) -> tuple[ShardRouter, list[ShardEndpoint]]:
    """Wire a router and its shard endpoints over one ``send`` callable.

    The caller registers each returned component's ``handle`` with its
    transport under the matching address.
    """
    shard_addrs = {sid: shard_addr(sid) for sid in range(plan.n_shards)}
    shards = [
        ShardEndpoint(sid, plan, shard_addrs[sid], send, shard_addrs)
        for sid in range(plan.n_shards)
    ]
    router = ShardRouter(plan, router_addr, send, shard_addrs)
    return router, shards
