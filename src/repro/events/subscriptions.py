"""Subscription and advertisement records kept by brokers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.events.filters import Filter

_sub_counter = itertools.count(1)
_adv_counter = itertools.count(1)


def next_subscription_id() -> int:
    return next(_sub_counter)


@dataclass(frozen=True, slots=True)
class Subscription:
    """A filter registered by a client or a neighbouring broker."""

    sub_id: int
    filter: Filter
    subscriber: object  # client address or broker address

    @classmethod
    def fresh(cls, filter: Filter, subscriber: object) -> "Subscription":
        return cls(next_subscription_id(), filter, subscriber)


@dataclass(frozen=True, slots=True)
class Advertisement:
    """A producer's declaration of the notifications it will publish (§3)."""

    adv_id: int
    filter: Filter
    advertiser: object

    @classmethod
    def fresh(cls, filter: Filter, advertiser: object) -> "Advertisement":
        return cls(next(_adv_counter), filter, advertiser)
