"""Covering relations between constraints and filters.

Covering is the heart of Siena's scalability: a broker forwards a
subscription toward its neighbours only if no already-forwarded subscription
*covers* it (admits a superset of its notifications).  Experiment E4's
per-broker load flattening comes from exactly this pruning.

``a covers b`` means: every notification matched by ``b`` is matched by
``a``.  The implementation is conservative — when in doubt it answers False,
which only costs redundant forwarding, never lost notifications.
"""

from __future__ import annotations

from repro.events.filters import Constraint, Filter, Op


def _same_family(av, bv) -> bool:
    """Do both values live in one comparison family (bool/number/string)?

    ``Constraint.matches`` only ever compares within a family, but raw
    ``==``/``!=`` on the constraint values folds ``True`` into ``1`` —
    without this guard ``[x != -1]`` would claim to cover ``[x = False]``
    while matching no bool at all, an unsound ``True`` that covering
    suppression would turn into lost subscriptions.
    """
    if isinstance(av, bool) or isinstance(bv, bool):
        return isinstance(av, bool) and isinstance(bv, bool)
    if isinstance(av, (int, float)) and isinstance(bv, (int, float)):
        return True
    return isinstance(av, str) and isinstance(bv, str)


def constraint_covers(a: Constraint, b: Constraint) -> bool:
    """Does constraint ``a`` admit every value admitted by ``b``?"""
    if a.name != b.name:
        return False
    if a.op is Op.EXISTS:
        return True
    if b.op is Op.EXISTS:
        return False

    av, bv = a.value, b.value
    a_num = isinstance(av, (int, float)) and not isinstance(av, bool)
    b_num = isinstance(bv, (int, float)) and not isinstance(bv, bool)
    a_str = isinstance(av, str)
    b_str = isinstance(bv, str)

    if a.op is Op.EQ:
        return b.op is Op.EQ and _same_family(av, bv) and av == bv
    if a.op is Op.NE:
        if b.op is Op.NE:
            return _same_family(av, bv) and av == bv
        if b.op is Op.EQ:
            return _same_family(av, bv) and av != bv
        if a_num and b_num:
            # e.g. NE 5 covers LT 5, GT 5; conservative otherwise.
            if b.op is Op.LT:
                return bv <= av
            if b.op is Op.GT:
                return bv >= av
        return False

    if a.op in (Op.LT, Op.LE, Op.GT, Op.GE):
        if not (a_num and b_num):
            return False
        if a.op is Op.LT:
            if b.op is Op.LT:
                return bv <= av
            if b.op is Op.LE:
                return bv < av
            if b.op is Op.EQ:
                return bv < av
            return False
        if a.op is Op.LE:
            if b.op in (Op.LT, Op.LE, Op.EQ):
                return bv <= av
            return False
        if a.op is Op.GT:
            if b.op is Op.GT:
                return bv >= av
            if b.op is Op.GE:
                return bv > av
            if b.op is Op.EQ:
                return bv > av
            return False
        # GE
        if b.op in (Op.GT, Op.GE, Op.EQ):
            return bv >= av
        return False

    if a.op is Op.PREFIX:
        if not (a_str and b_str):
            return False
        if b.op in (Op.PREFIX, Op.EQ):
            return bv.startswith(av)
        return False
    if a.op is Op.SUFFIX:
        if not (a_str and b_str):
            return False
        if b.op in (Op.SUFFIX, Op.EQ):
            return bv.endswith(av)
        return False
    if a.op is Op.CONTAINS:
        if not (a_str and b_str):
            return False
        if b.op in (Op.CONTAINS, Op.PREFIX, Op.SUFFIX, Op.EQ):
            return av in bv
        return False
    return False


def filter_covers(a: Filter, b: Filter) -> bool:
    """Does filter ``a`` match every notification matched by ``b``?

    True iff every constraint of ``a`` is covered by some constraint of
    ``b`` (``b`` is at least as restrictive on every attribute ``a``
    mentions).
    """
    return all(
        any(constraint_covers(ca, cb) for cb in b.constraints)
        for ca in a.constraints
    )
