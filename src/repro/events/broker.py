"""Siena-style content-based broker network (acyclic peer-to-peer topology).

Subscriptions propagate through the broker graph with covering-based
pruning; notifications follow the reverse paths of the subscriptions they
match.  No broker sees traffic its subtree did not ask for — the property
that lets the per-broker load stay flat as the population grows (E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.events.covering import filter_covers
from repro.events.filters import Filter
from repro.events.model import Notification
from repro.events.subscriptions import Subscription
from repro.net.geo import WORLD_REGIONS, Position
from repro.net.host import Host
from repro.net.network import Address, Network
from repro.simulation import Simulator


# -- wire messages ------------------------------------------------------
@dataclass
class Subscribe:
    filter: Filter


@dataclass
class Unsubscribe:
    filter: Filter


@dataclass
class Advertise:
    """A producer declares the notifications it will publish (§3)."""

    filter: Filter


@dataclass
class Unadvertise:
    filter: Filter


@dataclass
class Publish:
    notification: Notification


@dataclass
class Notify:
    notification: Notification


@dataclass
class MoveOut:
    """Client announces disconnection; broker must proxy for it (Mobikit)."""


@dataclass
class MoveIn:
    """Client reappears at a (possibly different) broker."""

    client: Address
    old_broker: Address | None
    filters: tuple


@dataclass
class TransferRequest:
    client: Address
    new_broker: Address


@dataclass
class Transfer:
    client: Address
    buffered: tuple
    filters: tuple


class BrokerNode(Host):
    """One broker in the acyclic overlay.

    ``covering_enabled`` switches Siena's covering optimisation; disabling
    it (exact-duplicate suppression only) is the ablation baseline measured
    in benchmark A1.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        position: Position,
        covering_enabled: bool = True,
    ):
        super().__init__(sim, network, position)
        self.covering_enabled = covering_enabled
        self.neighbours: set[Address] = set()
        self.client_addrs: set[Address] = set()
        # Subscriptions by immediate source (neighbour broker or client).
        self.subs_by_source: dict[Address, list[Subscription]] = {}
        # Filters we have already pushed toward each neighbour.
        self.forwarded: dict[Address, list[Filter]] = {}
        # Advertisements by immediate source; queryable by management and
        # discovery tooling ("who produces weather events?").
        self.adverts_by_source: dict[Address, list[Filter]] = {}
        self.adverts_forwarded: dict[Address, list[Filter]] = {}
        # Mobikit proxies: disconnected client -> buffered notifications.
        self.proxies: dict[Address, list[Notification]] = {}
        self.notifications_processed = 0
        self.notifications_delivered = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, other: "BrokerNode") -> None:
        self.neighbours.add(other.addr)
        other.neighbours.add(self.addr)
        self.forwarded.setdefault(other.addr, [])
        other.forwarded.setdefault(self.addr, [])

    def attach_client(self, client_addr: Address) -> None:
        self.client_addrs.add(client_addr)

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def _store_subscription(self, source: Address, filter: Filter) -> None:
        subs = self.subs_by_source.setdefault(source, [])
        if any(s.filter == filter for s in subs):
            return
        subs.append(Subscription.fresh(filter, source))
        self._propagate_subscription(source, filter)

    def _propagate_subscription(self, source: Address, filter: Filter) -> None:
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            already = self.forwarded.setdefault(neighbour, [])
            if self.covering_enabled:
                if any(filter_covers(existing, filter) for existing in already):
                    continue  # covering: the neighbour already gets a superset
            elif filter in already:
                continue  # ablation baseline: only exact duplicates pruned
            already.append(filter)
            self.send(neighbour, Subscribe(filter), size_bytes=128)

    def _remove_subscription(self, source: Address, filter: Filter) -> None:
        subs = self.subs_by_source.get(source, [])
        self.subs_by_source[source] = [s for s in subs if s.filter != filter]
        if not self.subs_by_source[source]:
            del self.subs_by_source[source]
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            remaining = [
                s.filter
                for src, subs in self.subs_by_source.items()
                if src != neighbour
                for s in subs
            ]
            already = self.forwarded.setdefault(neighbour, [])
            if filter in already and not any(f == filter for f in remaining):
                already.remove(filter)
                self.send(neighbour, Unsubscribe(filter), size_bytes=128)
                # Re-forward anything the removed filter was masking.
                for f in remaining:
                    if not any(filter_covers(existing, f) for existing in already):
                        already.append(f)
                        self.send(neighbour, Subscribe(f), size_bytes=128)

    # ------------------------------------------------------------------
    # Advertisements
    # ------------------------------------------------------------------
    def _store_advertisement(self, source: Address, filter: Filter) -> None:
        adverts = self.adverts_by_source.setdefault(source, [])
        if filter in adverts:
            return
        adverts.append(filter)
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            already = self.adverts_forwarded.setdefault(neighbour, [])
            if self.covering_enabled and any(
                filter_covers(existing, filter) for existing in already
            ):
                continue
            if filter in already:
                continue
            already.append(filter)
            self.send(neighbour, Advertise(filter), size_bytes=128)

    def _remove_advertisement(self, source: Address, filter: Filter) -> None:
        adverts = self.adverts_by_source.get(source, [])
        if filter in adverts:
            adverts.remove(filter)
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            remaining = [
                f
                for src, filters in self.adverts_by_source.items()
                if src != neighbour
                for f in filters
            ]
            already = self.adverts_forwarded.setdefault(neighbour, [])
            if filter in already and filter not in remaining:
                already.remove(filter)
                self.send(neighbour, Unadvertise(filter), size_bytes=128)

    def advertisements(self) -> list[Filter]:
        """Every advertisement this broker knows about (all sources)."""
        return [f for filters in self.adverts_by_source.values() for f in filters]

    def advertised(self, notification: Notification) -> bool:
        """Would this notification fall under some known advertisement?"""
        return any(f.matches(notification) for f in self.advertisements())

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _process_publication(self, source: Address, notification: Notification) -> None:
        self.notifications_processed += 1
        size = notification.size_bytes()
        for dest, subs in list(self.subs_by_source.items()):
            if dest == source:
                continue
            if not any(s.filter.matches(notification) for s in subs):
                continue
            if dest in self.proxies:
                self.proxies[dest].append(notification)  # buffer for the mobile client
            elif dest in self.client_addrs:
                self.notifications_delivered += 1
                self.send(dest, Notify(notification), size_bytes=size)
            elif dest in self.neighbours:
                self.send(dest, Publish(notification), size_bytes=size)

    # ------------------------------------------------------------------
    # Mobility (Mobikit §3: static proxies for mobile entities)
    # ------------------------------------------------------------------
    def _handle_move_out(self, client: Address) -> None:
        if client in self.client_addrs:
            self.proxies.setdefault(client, [])

    def _handle_move_in(self, msg: MoveIn) -> None:
        self.attach_client(msg.client)
        for filter in msg.filters:
            self._store_subscription(msg.client, filter)
        if msg.old_broker is not None and msg.old_broker != self.addr:
            self.send(msg.old_broker, TransferRequest(msg.client, self.addr))
        elif msg.client in self.proxies:
            self._flush_proxy(msg.client)

    def _handle_transfer_request(self, msg: TransferRequest) -> None:
        buffered = tuple(self.proxies.pop(msg.client, ()))
        filters = tuple(
            s.filter for s in self.subs_by_source.get(msg.client, [])
        )
        self.client_addrs.discard(msg.client)
        for filter in filters:
            self._remove_subscription(msg.client, filter)
        self.send(msg.new_broker, Transfer(msg.client, buffered, filters), size_bytes=512)

    def _handle_transfer(self, msg: Transfer) -> None:
        for notification in msg.buffered:
            self.notifications_delivered += 1
            self.send(msg.client, Notify(notification), size_bytes=notification.size_bytes())

    def _flush_proxy(self, client: Address) -> None:
        for notification in self.proxies.pop(client, []):
            self.notifications_delivered += 1
            self.send(client, Notify(notification), size_bytes=notification.size_bytes())

    # ------------------------------------------------------------------
    def handle_message(self, src: Address, payload) -> None:
        if isinstance(payload, Subscribe):
            self._store_subscription(src, payload.filter)
        elif isinstance(payload, Unsubscribe):
            self._remove_subscription(src, payload.filter)
        elif isinstance(payload, Advertise):
            self._store_advertisement(src, payload.filter)
        elif isinstance(payload, Unadvertise):
            self._remove_advertisement(src, payload.filter)
        elif isinstance(payload, Publish):
            self._process_publication(src, payload.notification)
        elif isinstance(payload, MoveOut):
            self._handle_move_out(src)
        elif isinstance(payload, MoveIn):
            self._handle_move_in(payload)
        elif isinstance(payload, TransferRequest):
            self._handle_transfer_request(payload)
        elif isinstance(payload, Transfer):
            self._handle_transfer(payload)
        else:
            raise TypeError(f"unknown broker message: {payload!r}")


class SienaClient(Host):
    """An event producer/consumer attached to one broker."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        position: Position,
        broker: BrokerNode,
    ):
        super().__init__(sim, network, position)
        self.broker_addr = broker.addr
        broker.attach_client(self.addr)
        self.filters: list[Filter] = []
        self.received: list[tuple[float, Notification]] = []
        self.handlers: list[Callable[[Notification], None]] = []

    def subscribe(self, filter: Filter) -> None:
        self.filters.append(filter)
        self.send(self.broker_addr, Subscribe(filter), size_bytes=128)

    def unsubscribe(self, filter: Filter) -> None:
        if filter in self.filters:
            self.filters.remove(filter)
        self.send(self.broker_addr, Unsubscribe(filter), size_bytes=128)

    def advertise(self, filter: Filter) -> None:
        """Declare what this client will publish (§3's advertisements)."""
        self.send(self.broker_addr, Advertise(filter), size_bytes=128)

    def unadvertise(self, filter: Filter) -> None:
        self.send(self.broker_addr, Unadvertise(filter), size_bytes=128)

    def publish(self, notification: Notification) -> None:
        self.send(
            self.broker_addr, Publish(notification), size_bytes=notification.size_bytes()
        )

    def handle_message(self, src: Address, payload) -> None:
        if isinstance(payload, Notify):
            self.received.append((self.sim.now, payload.notification))
            for handler in list(self.handlers):
                handler(payload.notification)


def build_broker_tree(
    sim: Simulator,
    network: Network,
    count: int,
    branching: int = 3,
    covering_enabled: bool = True,
) -> list[BrokerNode]:
    """A tree-shaped (hence acyclic) broker overlay spread across regions."""
    rng = sim.rng_for("broker-build")
    brokers = [
        BrokerNode(
            sim,
            network,
            WORLD_REGIONS[i % len(WORLD_REGIONS)].random_position(rng),
            covering_enabled=covering_enabled,
        )
        for i in range(count)
    ]
    for index in range(1, count):
        parent = brokers[(index - 1) // branching]
        brokers[index].connect(parent)
    return brokers
