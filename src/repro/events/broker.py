"""Siena-style content-based broker network over trees *and* meshes.

Subscriptions propagate through the broker graph with covering-based
pruning; notifications follow the reverse paths of the subscriptions they
match.  No broker sees traffic its subtree did not ask for — the property
that lets the per-broker load stay flat as the population grows (E4).

Overlays may contain cycles.  Three mechanisms make routing on a mesh
converge the way it does on a tree:

* **Hop-count-tagged source paths** — every ``Subscribe``/``Advertise``
  carries the tuple of brokers it has traversed (its hop count is the
  tuple's length).  A broker never forwards control state to a
  neighbour already on its path and never stores a reflection of its
  own forwarding, so the control-plane flood terminates and installs,
  at every broker, one reverse-path entry per incoming direction —
  redundant state that later link failures simply prune.  When a copy
  of an already-known filter arrives over a *different* chain (two
  subscribers or producers registering the same filter, or a second
  route around a cycle), the recorded path **narrows** to the
  intersection of the chains — the brokers every known route passes
  through — and the filter re-propagates to the neighbours the wider
  path was wrongly excluding.  Paths only ever shrink, so the extra
  flooding is finite and the mesh converges to per-link-complete
  routing state.

* **Per-source reverse-path forwarding with first-hop wins** — every
  publication carries an id ``(origin address, sequence)``; each broker
  tracks, per origin, a sequence *floor* plus the out-of-order ids above
  it (:class:`~repro.events.failure.OriginFloorCache`) and processes
  only the first copy to arrive, dropping the rest
  (``duplicates_suppressed`` counts them).  Each publisher's traffic
  therefore follows an implicit spanning tree of the mesh rooted at its
  first-hop broker, and every matching client receives exactly one copy
  no matter how many redundant links the publication crossed.  The
  duplicate state is bounded by the count of origins active within
  ``seen_ttl`` — not by a fixed-size guess — and the safety contract is
  explicit: ``seen_ttl`` must exceed a publication's worst transit.

* **Link-failure survival and self-healing** —
  :meth:`BrokerNode.disconnect` withdraws only the state the dead link
  carried; the entries installed through surviving directions keep
  routing, so traffic re-converges over the remaining paths without a
  full state rebuild.  On a mesh with a redundant link, killing either
  copy of the redundancy loses nothing (the E5 fault-tolerance phase
  measures this against the tree variant, which partitions).  Each side
  of a link can also be torn down *one-sidedly*
  (:meth:`BrokerNode.drop_link`) and re-joined with a full state
  exchange (:meth:`BrokerNode.restore_link`) — the primitives a
  :class:`~repro.events.failure.FailureDetector` drives when its
  heartbeats stop (or resume) crossing a link, making the overlay
  self-healing without any caller noticing the failure first.

* **Path re-widening** — narrowing (above) is driven by *arrivals*; the
  inverse pass is driven by *removals*.  When one copy of a filter is
  unsubscribed/unadvertised away but another copy keeps the filter
  forwarded, the forwarding broker recomputes the path a fresh overlay
  would send — the intersection of the surviving chains, necessarily a
  superset of the old narrowed path — and re-sends it with
  ``path_reset`` so downstream brokers widen their stored paths too.
  Without it, heavy churn leaves paths narrowed by departed origins,
  flooding control state wider than a freshly-built overlay ever would.
  Resets only ever widen (a non-superset reset is ignored), so the
  narrowing/widening pair cannot oscillate.

Dispatch runs through the predicate-indexed matching fabric
(:mod:`repro.events.index`): publications are routed with a counting
:class:`~repro.events.index.PredicateIndex` over the subscription store,
and covering decisions (forwarding suppression, unmasking on removal)
are :class:`~repro.events.index.CoveringPoset` lookups.  ``indexed=False``
keeps the seed's linear scans as the measurable ablation baseline
(benchmark E13), just as ``covering_enabled=False`` keeps the
no-covering baseline (benchmark A1).

Two routing behaviours complete Siena's advertisement/subscription
interaction:

* **Advertisement-pruned subscription forwarding** (``adv_pruned=True``)
  — a subscription travels toward a neighbour only when that
  neighbour's subtree has advertised a filter intersecting it
  (:func:`~repro.events.filters.filters_intersect`; a ``False``
  intersection answer is exact, so pruning can never lose advertised
  traffic).  An advertisement arriving later re-forwards the
  subscriptions it unblocks; an unadvertise retracts the subscriptions
  the withdrawn filter alone was justifying.  Producers must advertise
  before publishing for deliveries to be mode-independent — the Siena
  contract — and the E5 benchmark quantifies the Subscribe-forwarding
  reduction on producer-sparse trees.

* **Dynamic topologies** — :meth:`BrokerNode.connect` exchanges the
  complete current subscription/advertisement state between the two
  brokers (advertisements first, so pruning decisions on the far side
  see them), letting subtrees join after traffic has started and still
  converge to delivery-equivalent routing state;
  :meth:`BrokerNode.disconnect` withdraws everything the departing link
  carried, propagating the retractions onward.

``tests/test_broker_topology_equivalence.py`` holds all of it to
randomized delivery equivalence across {naive, indexed,
indexed+adv_pruned} and across join orders.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.events.covering import filter_covers
from repro.events.failure import (
    Heartbeat,
    OriginFloorCache,
    Resync,
    install_detectors,
)
from repro.events.filters import Filter, eq, exists, filters_intersect
from repro.events.index import CoveringPoset, PredicateIndex
from repro.events.placement import plan_extra_links
from repro.events.model import Notification, make_event
from repro.events.rendezvous import RendezvousEngine
from repro.events.subscriptions import Subscription
from repro.ids import GUID_DIGITS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.failure import FailureDetector, HeartbeatConfig
from repro.net.geo import WORLD_REGIONS, Position
from repro.net.host import Host
from repro.net.network import Address, Network
from repro.simulation import PeriodicTask, Simulator


# -- wire messages ------------------------------------------------------
#
# Subscribe/Advertise carry ``path``: the ordered tuple of broker
# addresses the filter has traversed, origin-side first, ending with the
# sender.  ``len(path)`` is the hop count.  On meshes the tag scopes the
# flood (never forward to a broker already on the path) and rejects
# reflections (never store state whose path passes through yourself),
# which is what lets add/remove churn converge to the same routing state
# a tree would reach.  On acyclic overlays the tag never changes a
# forwarding decision, though identical filters from different origins
# still trigger (no-op) narrowing re-sends — the modest control-traffic
# price of mesh-readiness.  ``path_reset`` marks a *re-widening* re-send
# (one surviving copy of a filter recomputed its path after another was
# removed): the receiver replaces its stored path when the carried one
# is strictly wider, instead of intersecting.  Retractions carry no tag:
# they terminate via state-presence checks (removing an absent entry is
# a no-op), not flood scoping.
@dataclass(slots=True)
class Subscribe:
    filter: Filter
    path: tuple[Address, ...] = ()
    path_reset: bool = False


@dataclass(slots=True)
class Unsubscribe:
    filter: Filter


@dataclass(slots=True)
class Advertise:
    """A producer declares the notifications it will publish (§3)."""

    filter: Filter
    path: tuple[Address, ...] = ()
    path_reset: bool = False


@dataclass(slots=True)
class Unadvertise:
    filter: Filter


@dataclass(slots=True)
class Publish:
    """A publication in flight, tagged for duplicate suppression.

    ``pub_id`` is ``(origin address, sequence)`` — stamped by the
    publishing client (or by the first broker to see an untagged
    publication) and carried unchanged across every hop, so brokers on
    a mesh can recognise the second copy arriving over a redundant
    link.  ``None`` stays accepted for wire compatibility.
    """

    notification: Notification
    pub_id: tuple[Address, int] | None = None


@dataclass(slots=True)
class Notify:
    notification: Notification


@dataclass(slots=True)
class PublishBatch:
    """A burst of publications travelling as one wire message.

    ``items`` is an ordered tuple of ``(notification, pub_id)`` pairs —
    each pair carries exactly what a standalone :class:`Publish` would,
    so a receiver without the batched fast path can unbundle and process
    them one at a time with identical results.  Order within the batch
    is the publish order, and the network's per-(src, dst) FIFO makes
    batch boundaries invisible to delivery ordering.
    """

    items: tuple


@dataclass(slots=True)
class NotifyBatch:
    """A burst of client deliveries coalesced into one wire message."""

    notifications: tuple


@dataclass(slots=True)
class MoveOut:
    """Client announces disconnection; broker must proxy for it (Mobikit)."""


@dataclass(slots=True)
class MoveIn:
    """Client reappears at a (possibly different) broker."""

    client: Address
    old_broker: Address | None
    filters: tuple


@dataclass(slots=True)
class TransferRequest:
    """Ask the old broker to hand a client's proxy state to ``new_broker``.

    ``successor`` redirects the handover to a *different* endpoint than
    the one that moved out: a migrating service's replacement instance
    has its own address, so the old broker addresses the resulting
    :class:`Transfer` (and its buffered notifications) to the successor
    rather than back to the departed original.  ``None`` keeps Mobikit's
    same-client roaming behaviour.
    """

    client: Address
    new_broker: Address
    successor: Address | None = None


@dataclass(slots=True)
class Transfer:
    """Proxy handover from the old broker to the new one (Mobikit).

    Carries both the buffered notifications and the client's filters as
    recorded by the old broker.  The MoveIn normally re-registers the
    filters (the client carries its own list), but the receiving broker
    also re-registers ``filters`` defensively so a handover can never
    strip a subscription even if the MoveIn's list was stale.
    """

    client: Address
    buffered: tuple
    filters: tuple


class BrokerNode(Host):
    """One broker in the overlay (tree or mesh).

    Every optimisation is a constructor knob, each preserving delivery
    semantics exactly (the equivalence suites pin this) while changing
    what the hot paths cost.  Knob by knob:

    ``covering_enabled`` (default ``True``) — Siena's covering
      optimisation on forwarded control state; ``False`` (exact-duplicate
      suppression only) is the ablation measured in benchmark A1.
    ``indexed`` (default ``True``) — the counting
      :class:`~repro.events.index.PredicateIndex` matching fabric;
      ``False`` restores the seed's linear scans, the "naive" ablation
      measured in benchmark E13.
    ``adv_pruned`` (default ``False``) — advertisement-pruned
      subscription forwarding, benchmark E5's ablation: subscriptions
      travel only toward advertising subtrees.  Deliveries stay
      identical for producers that advertise before publishing;
      unadvertised traffic is only guaranteed local delivery (see
      ``advert_on_first_publish``).
    ``batched`` (default ``False``) — the PublishBatch fast path:
      inbound bursts share one ``match_batch`` sweep and forward as
      per-destination batches (benchmark E13's batch rows).  Off, bursts
      unbundle through the one-at-a-time path, identically.
    ``advert_on_first_publish`` (default ``False``) — legacy-producer
      escape hatch under ``adv_pruned``: synthesise an advertisement
      from the first unadvertised publication's shape.
    ``seen_ttl`` (default ``30.0`` s) — per-origin publication dedup
      horizon (:class:`~repro.events.failure.OriginFloorCache`); must
      exceed a publication's worst transit for exactly-once processing
      on cyclic overlays.
    ``routing`` (default ``"flood"``) — ``"flood"`` is Siena's
      subscription flooding; ``"dht"`` replaces the control-state flood
      with Scribe-style rendezvous trees on Pastry state
      (:mod:`repro.events.rendezvous`), measured against flooding in
      benchmark E5's ``dht_scale`` phase.
    ``rv_refresh`` (default ``1.0`` s) — rendezvous soft-state refresh
      period; only meaningful under ``routing="dht"``.
    ``shards`` (default ``1``) — partitioned local matching
      (:class:`~repro.events.sharding.ShardedSubscriptionIndex`): the
      subscription table splits across this many subject shards so each
      event pays only its shard's candidate pools (benchmark E14;
      2.67× at 4 shards on the city workload).  Requires ``indexed``;
      ``1`` keeps the monolithic index — the E14 ablation baseline.

    All knobs compose with mesh overlays — cycles are handled by
    path-tagged control state and the per-origin dedup floor — and with
    an attached :class:`~repro.events.failure.FailureDetector`, which
    drives the one-sided :meth:`drop_link`/:meth:`restore_link`
    primitives when heartbeats stop (or resume) crossing a link.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        position: Position,
        covering_enabled: bool = True,
        indexed: bool = True,
        adv_pruned: bool = False,
        batched: bool = False,
        advert_on_first_publish: bool = False,
        seen_ttl: float = 30.0,
        routing: str = "flood",
        rv_refresh: float = 1.0,
        shards: int = 1,
    ):
        super().__init__(sim, network, position)
        if routing not in ("flood", "dht"):
            raise ValueError(f"unknown routing mode: {routing!r}")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shards > 1 and not indexed:
            raise ValueError("sharded matching requires indexed=True")
        self.covering_enabled = covering_enabled
        self.indexed = indexed
        self.adv_pruned = adv_pruned
        # Routing mode: "flood" is Siena's subscription flooding (with
        # or without adv_pruned); "dht" replaces the control-state flood
        # with Scribe-style rendezvous trees on Pastry routing state
        # (repro.events.rendezvous) — overlay links then only carry the
        # membership gossip and heartbeats, while subscriptions stay
        # local and publications travel point-to-point along the DHT.
        self.routing = routing
        # Batched publication fast path: inbound PublishBatch bursts are
        # matched through PredicateIndex.match_batch and forwarded as
        # per-destination batches.  Off, a batch is unbundled and walked
        # through the one-at-a-time path — deliveries are identical
        # either way (the batch-equivalence suite pins this).
        self.batched = batched
        # Legacy-producer escape hatch for advertisement pruning: when a
        # directly-attached client publishes without ever advertising,
        # synthesise an advertisement from the publication's shape so
        # remote subscriptions get routed toward this broker.  The first
        # publication may still miss remote subscribers (the synthesised
        # advert races outward); later ones ride the unblocked routes.
        self.advert_on_first_publish = advert_on_first_publish
        self.seen_ttl = seen_ttl
        # Broker→neighbour control traffic by message type — the E5
        # benchmark reads the Subscribe row to price routing-table upkeep.
        self.control_counts: Counter[str] = Counter()
        self.neighbours: set[Address] = set()
        self.client_addrs: set[Address] = set()
        # Subscriptions by immediate source (neighbour broker or client).
        self.subs_by_source: dict[Address, list[Subscription]] = {}
        # Filters we have already pushed toward each neighbour.
        self.forwarded: dict[Address, list[Filter]] = {}
        # Advertisements by immediate source; queryable by management and
        # discovery tooling ("who produces weather events?").
        self.adverts_by_source: dict[Address, list[Filter]] = {}
        self.adverts_forwarded: dict[Address, list[Filter]] = {}
        # Mobikit proxies: disconnected client -> buffered notifications.
        self.proxies: dict[Address, list[Notification]] = {}
        self.notifications_processed = 0
        self.notifications_delivered = 0
        # The matching-fabric structures exist regardless of the switch
        # (they are cheap when empty); only the indexed path consults them.
        # Counting index over every stored subscription (payload: the
        # source it arrived from) — drives _process_publication.  With
        # shards > 1 the index is partitioned by event subject so each
        # publication sweeps only its partition's candidate pools
        # (repro.events.sharding); deliveries are identical either way.
        self.shards = shards
        if shards > 1:
            # Imported lazily: sharding.py uses this module's wire
            # dataclasses, so a top-level import would be circular.
            from repro.events.sharding import ShardedSubscriptionIndex, ShardPlan

            self._sub_index: PredicateIndex = ShardedSubscriptionIndex(
                ShardPlan(shards)
            )
        else:
            self._sub_index = PredicateIndex()
        self._sub_entry_ids: dict[tuple[Address, Filter], int] = {}
        # Covering poset over the same store — drives the "what was
        # the removed filter masking?" query on unsubscribe.
        self._sub_poset = CoveringPoset()
        self._sub_poset_ids: dict[tuple[Address, Filter], int] = {}
        self._sub_sources: dict[Filter, set[Address]] = {}
        # Per-neighbour posets over the forwarded filter sets — drive
        # the "is this covered by an already-forwarded one?" query.
        self._fwd_posets: dict[Address, CoveringPoset] = {}
        self._fwd_ids: dict[Address, dict[Filter, int]] = {}
        # Advertisement twins of all of the above.
        self._adv_index = PredicateIndex()
        self._adv_entry_ids: dict[tuple[Address, Filter], int] = {}
        self._adv_poset = CoveringPoset()
        self._adv_poset_ids: dict[tuple[Address, Filter], int] = {}
        self._adv_sources: dict[Filter, set[Address]] = {}
        self._advfwd_posets: dict[Address, CoveringPoset] = {}
        self._advfwd_ids: dict[Address, dict[Filter, int]] = {}
        # Per-source posets over the advertisements received *from* each
        # source — the "does this subtree produce anything the
        # subscription wants?" query behind advertisement pruning.
        self._adv_in: dict[Address, CoveringPoset] = {}
        self._adv_in_ids: dict[tuple[Address, Filter], int] = {}
        # Source path each stored filter arrived with (clients arrive
        # with the empty path) — re-forwarding a stored filter (link
        # sync, unmasking, deferred unblock) re-uses it so the flood
        # stays loop-scoped on meshes.  Duplicate arrivals over other
        # chains narrow the path to the chains' intersection.
        self._sub_paths: dict[tuple[Address, Filter], tuple[Address, ...]] = {}
        self._adv_paths: dict[tuple[Address, Filter], tuple[Address, ...]] = {}
        # The path each filter was last pushed toward a neighbour with
        # (as a set) — when a narrower copy arrives, the delta is
        # re-sent so the neighbour can narrow its stored path too.
        self._fwd_sent: dict[Address, dict[Filter, frozenset]] = {}
        self._advfwd_sent: dict[Address, dict[Filter, frozenset]] = {}
        # Publication duplicate suppression: per-origin sequence floors
        # with TTL expiry.  First copy wins; every later copy arriving
        # over a redundant path is dropped here.
        self.pub_dedup = OriginFloorCache(ttl=seen_ttl)
        self._pub_seq = 0
        self.duplicates_suppressed = 0
        # Advertisements synthesised by advert_on_first_publish, so one
        # publication shape registers (and floods) only once per client.
        self._auto_adverts: set[tuple[Address, Filter]] = set()
        # Set by an attached FailureDetector; inbound Heartbeats route
        # there, and connect()/disconnect() report intentional topology
        # changes so they are never mistaken for failures.
        self.failure_detector: "FailureDetector | None" = None
        # Set by an attached BrokerMetrics; the publication paths feed it
        # every processed notification so it can age the traffic.
        self.metrics: "BrokerMetrics | None" = None
        # The rendezvous engine exists only in dht mode; every flood
        # suppression below keys off it.
        self.rv: RendezvousEngine | None = (
            RendezvousEngine(self, refresh_interval=rv_refresh)
            if routing == "dht"
            else None
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, other: "BrokerNode") -> None:
        """Link two brokers and exchange their full routing state.

        Each side pushes every advertisement and subscription it stores
        (advertisements first, so advertisement-pruned forwarding
        decisions on the receiving side can already see them), exactly
        as if the filters were arriving fresh — covering suppression
        and pruning apply as usual.  A subtree connected after traffic
        has started therefore converges to the same delivery behaviour
        as one present from the start.  Idempotent: connecting an
        already-linked pair is a no-op (no state re-exchange).

        Repairing a *half-dropped* link (one side tore it down with
        :meth:`drop_link`, the other never noticed) works too: the side
        that kept the link replays its state with cleared per-link
        bookkeeping — its records of what the far side holds are stale —
        exactly as a :class:`~repro.events.failure.Resync` would.
        """
        if other.addr in self.neighbours and self.addr in other.neighbours:
            return
        if other.addr in self.neighbours:
            self._reset_and_sync(other.addr)
        else:
            self.restore_link(other.addr)
        if self.addr in other.neighbours:
            other._reset_and_sync(self.addr)
        else:
            other.restore_link(self.addr)
        if self.failure_detector is not None:
            self.failure_detector.watch(other.addr)
        if other.failure_detector is not None:
            other.failure_detector.watch(self.addr)

    def disconnect(self, other: "BrokerNode") -> None:
        """Tear down the link and withdraw the state it carried.

        Both ends drop what they forwarded across the link, remove the
        subscriptions/advertisements the departing neighbour had sent,
        and propagate the retractions onward — the inverse of
        :meth:`connect`'s state exchange.  On a mesh, entries installed
        through surviving directions are untouched, so traffic
        re-converges over the remaining paths without a state rebuild.
        Idempotent: disconnecting a non-neighbour is a no-op.
        """
        if self.failure_detector is not None:
            self.failure_detector.forget(other.addr)
        if other.failure_detector is not None:
            other.failure_detector.forget(self.addr)
        self.drop_link(other.addr)
        other.drop_link(self.addr)

    def drop_link(self, neighbour: Address) -> None:
        """One-sided link teardown: withdraw the state the link carried.

        This is :meth:`disconnect`'s half that a failure detector can
        drive without reaching the (unreachable) far side: forget what
        was forwarded across the link, remove what the neighbour had
        sent, and propagate the retractions onward.  Idempotent.
        """
        if neighbour not in self.neighbours:
            return
        self.neighbours.discard(neighbour)
        self._forget_neighbour(neighbour)
        if self.rv is not None:
            self.rv.on_link_down(neighbour)

    def restore_link(self, neighbour: Address) -> None:
        """One-sided link (re-)establishment with full state push.

        The :meth:`connect` half a failure detector drives when a
        suspected neighbour's heartbeats resume: record the link and
        push every stored advertisement and subscription toward it, as
        if each were arriving fresh.  Idempotent.
        """
        if neighbour in self.neighbours:
            return
        self.neighbours.add(neighbour)
        self.forwarded.setdefault(neighbour, [])
        self._sync_new_neighbour(neighbour)

    def _sync_new_neighbour(self, neighbour: Address) -> None:
        if self.rv is not None:
            # No filter state crosses links in dht mode; a new/restored
            # link instead exchanges membership snapshots, from which
            # both sides re-graft their rendezvous trees.
            self.rv.hello(neighbour)
            return
        for source, filters in list(self.adverts_by_source.items()):
            if source == neighbour:
                continue
            for filter in list(filters):
                self._forward_filter(
                    neighbour, filter,
                    self._adv_paths.get((source, filter), ()),
                    self.adverts_forwarded, self._advfwd_posets,
                    self._advfwd_ids, self._advfwd_sent, Advertise,
                )
        for source, subs in list(self.subs_by_source.items()):
            if source == neighbour:
                continue
            for sub in list(subs):
                if self._sub_blocked(neighbour, sub.filter):
                    continue  # re-forwarded if their advertisements arrive
                self._forward_filter(
                    neighbour, sub.filter,
                    self._sub_paths.get((source, sub.filter), ()),
                    self.forwarded, self._fwd_posets,
                    self._fwd_ids, self._fwd_sent, Subscribe,
                )

    def _forget_neighbour(self, neighbour: Address) -> None:
        self.forwarded.pop(neighbour, None)
        self._fwd_posets.pop(neighbour, None)
        self._fwd_ids.pop(neighbour, None)
        self._fwd_sent.pop(neighbour, None)
        self.adverts_forwarded.pop(neighbour, None)
        self._advfwd_posets.pop(neighbour, None)
        self._advfwd_ids.pop(neighbour, None)
        self._advfwd_sent.pop(neighbour, None)
        for filter in [s.filter for s in self.subs_by_source.get(neighbour, [])]:
            self._remove_subscription(neighbour, filter)
        for filter in list(self.adverts_by_source.get(neighbour, ())):
            self._remove_advertisement(neighbour, filter)
        self.adverts_by_source.pop(neighbour, None)
        self._adv_in.pop(neighbour, None)

    def attach_client(self, client_addr: Address) -> None:
        self.client_addrs.add(client_addr)

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def _store_subscription(
        self,
        source: Address,
        filter: Filter,
        path: tuple[Address, ...] = (),
        path_reset: bool = False,
    ) -> None:
        if self.addr in path:
            return  # a reflection of our own forwarding around a cycle
        subs = self.subs_by_source.setdefault(source, [])
        if self.indexed:
            known = source in self._sub_sources.get(filter, ())
        else:
            known = any(s.filter == filter for s in subs)
        if known:
            if path_reset:
                if self._widen_stored(source, filter, path, self._sub_paths):
                    self._propagate_sub_widening(filter)
            else:
                self._narrow_stored(
                    source, filter, path, self._sub_paths,
                    self._propagate_subscription,
                )
            return
        subs.append(Subscription.fresh(filter, source))
        if self.indexed:
            key = (source, filter)
            self._sub_entry_ids[key] = self._sub_index.add(filter, payload=source)
            self._sub_poset_ids[key] = self._sub_poset.add(filter, payload=key)
            self._sub_sources.setdefault(filter, set()).add(source)
        self._sub_paths[(source, filter)] = path
        self._propagate_subscription(source, filter, path)
        if self.rv is not None:
            self.rv.on_subscribe(filter)

    def _narrow_stored(
        self,
        source: Address,
        filter: Filter,
        path: tuple[Address, ...],
        paths: dict[tuple[Address, Filter], tuple[Address, ...]],
        propagate,
    ) -> None:
        """Narrow a stored filter's path when a copy arrives another way.

        The stored path becomes the intersection of every chain the
        filter has arrived over from this source — only the brokers on
        *all* of them are guaranteed to know the filter already.  When
        it shrinks, the filter re-propagates: neighbours the wider path
        excluded may now legitimately need it.
        """
        key = (source, filter)
        old = paths.get(key)
        if old is None:
            return
        arrived = set(path)
        new = tuple(x for x in old if x in arrived)
        if len(new) == len(old):
            return
        paths[key] = new
        propagate(source, filter, new)

    # ------------------------------------------------------------------
    # Path re-widening (the inverse of narrowing, driven by removals)
    # ------------------------------------------------------------------
    def _widen_stored(
        self,
        source: Address,
        filter: Filter,
        path: tuple[Address, ...],
        paths: dict[tuple[Address, Filter], tuple[Address, ...]],
    ) -> bool:
        """Replace a stored path with a strictly wider reset; else ignore.

        Only strict supersets are accepted: a reset is the sender's
        recomputation after one of the chains feeding an intersection
        disappeared, so it can only widen — and insisting on that keeps
        the narrow/widen pair monotone (no oscillating re-sends).
        """
        key = (source, filter)
        old = paths.get(key)
        if old is None or not set(path) > set(old):
            return False
        paths[key] = tuple(path)
        return True

    def _sub_source_paths(
        self, filter: Filter, exclude: Address
    ) -> list[tuple[Address, ...]]:
        """Stored paths of every copy of ``filter`` not from ``exclude``."""
        if self.indexed:
            sources = self._sub_sources.get(filter, ())
        else:
            sources = [
                src
                for src, subs in self.subs_by_source.items()
                if any(s.filter == filter for s in subs)
            ]
        return [
            self._sub_paths.get((src, filter), ())
            for src in sources
            if src != exclude
        ]

    def _adv_source_paths(
        self, filter: Filter, exclude: Address
    ) -> list[tuple[Address, ...]]:
        if self.indexed:
            sources = self._adv_sources.get(filter, ())
        else:
            sources = [
                src
                for src, filters in self.adverts_by_source.items()
                if filter in filters
            ]
        return [
            self._adv_paths.get((src, filter), ())
            for src in sources
            if src != exclude
        ]

    def _propagate_sub_widening(self, filter: Filter) -> None:
        if self.rv is not None:
            return
        for neighbour in self.neighbours:
            self._rewiden_forwarded(
                neighbour, filter, self._sub_source_paths(filter, neighbour),
                self.forwarded, self._fwd_sent, Subscribe,
            )

    def _propagate_adv_widening(self, filter: Filter) -> None:
        if self.rv is not None:
            return
        for neighbour in self.neighbours:
            self._rewiden_forwarded(
                neighbour, filter, self._adv_source_paths(filter, neighbour),
                self.adverts_forwarded, self._advfwd_sent, Advertise,
            )

    def _rewiden_forwarded(
        self,
        neighbour: Address,
        filter: Filter,
        survivor_paths: list[tuple[Address, ...]],
        forwarded: dict[Address, list[Filter]],
        sent_paths: dict[Address, dict[Filter, frozenset]],
        forward_msg,
    ) -> None:
        """Re-send a forwarded filter whose fresh path is wider than sent.

        ``survivor_paths`` are the stored paths of the copies still
        justifying the forward; a fresh overlay would send their
        intersection, which after a removal may be a strict superset of
        what narrowing left behind.  A wider path means *fewer* brokers
        flooded on later re-sends — the state a long-lived overlay keeps
        converges back to what a freshly built one would hold.
        """
        if filter not in forwarded.get(neighbour, ()):
            return
        sent = sent_paths.get(neighbour)
        old = sent.get(filter) if sent is not None else None
        if old is None or not survivor_paths:
            return
        base = survivor_paths[0]
        fresh = set(base)
        for path in survivor_paths[1:]:
            fresh &= set(path)
        if not fresh > old:
            return
        if neighbour in fresh:
            # The neighbour sits on every surviving chain: it would
            # reject the re-send as a reflection anyway.
            return
        sent[filter] = frozenset(fresh)
        ordered = tuple(x for x in base if x in fresh)
        self._send_control(
            neighbour, forward_msg(filter, ordered + (self.addr,), True)
        )

    def _propagate_subscription(
        self, source: Address, filter: Filter, path: tuple[Address, ...]
    ) -> None:
        if self.rv is not None:
            return  # dht mode: interest is grafted, never flooded
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            if self._sub_blocked(neighbour, filter):
                continue  # deferred: unblocked if an advertisement arrives
            self._forward_filter(
                neighbour, filter, path, self.forwarded,
                self._fwd_posets, self._fwd_ids, self._fwd_sent, Subscribe,
            )

    def _remove_subscription(self, source: Address, filter: Filter) -> None:
        subs = self.subs_by_source.get(source, [])
        if self.rv is not None and any(s.filter == filter for s in subs):
            self.rv.on_unsubscribe(filter)
        self.subs_by_source[source] = [s for s in subs if s.filter != filter]
        if not self.subs_by_source[source]:
            del self.subs_by_source[source]
        self._sub_paths.pop((source, filter), None)
        if self.indexed:
            key = (source, filter)
            if key in self._sub_entry_ids:
                self._sub_index.remove(self._sub_entry_ids.pop(key))
                self._sub_poset.remove(self._sub_poset_ids.pop(key))
                self._drop_source(self._sub_sources, filter, source)
            for neighbour in self.neighbours:
                if neighbour == source:
                    continue
                self._retract_forwarded(
                    neighbour,
                    filter,
                    store_poset=self._sub_poset,
                    sources=self._sub_sources,
                    paths=self._sub_paths,
                    forwarded=self.forwarded,
                    posets=self._fwd_posets,
                    ids_by_neighbour=self._fwd_ids,
                    sent_paths=self._fwd_sent,
                    retract_msg=Unsubscribe,
                    restore_msg=Subscribe,
                    restore_pruned=True,
                )
            return
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            remaining = [
                (src, s.filter)
                for src, subs in self.subs_by_source.items()
                if src != neighbour
                for s in subs
            ]
            already = self.forwarded.setdefault(neighbour, [])
            if filter in already and not any(f == filter for _, f in remaining):
                already.remove(filter)
                self._fwd_sent.get(neighbour, {}).pop(filter, None)
                self._send_control(neighbour, Unsubscribe(filter))
                # Re-forward anything the removed filter was masking
                # (duplicate/covering/path suppression lives in
                # _forward_filter).
                for src, f in remaining:
                    if self._sub_blocked(neighbour, f):
                        continue
                    self._forward_filter(
                        neighbour, f, self._sub_paths.get((src, f), ()),
                        self.forwarded, self._fwd_posets, self._fwd_ids,
                        self._fwd_sent, Subscribe,
                    )
            elif filter in already:
                # Still forwarded on behalf of surviving copies: the
                # departed chain may have been narrowing the sent path.
                self._rewiden_forwarded(
                    neighbour, filter, self._sub_source_paths(filter, neighbour),
                    self.forwarded, self._fwd_sent, Subscribe,
                )

    # ------------------------------------------------------------------
    # Advertisement pruning predicates
    # ------------------------------------------------------------------
    def _adv_intersects(self, neighbour: Address, filter: Filter) -> bool:
        """Has ``neighbour`` advertised anything intersecting ``filter``?"""
        if self.indexed:
            poset = self._adv_in.get(neighbour)
            return poset is not None and poset.intersecting_any(filter)
        return any(
            filters_intersect(advert, filter)
            for advert in self.adverts_by_source.get(neighbour, ())
        )

    def _sub_blocked(self, neighbour: Address, filter: Filter) -> bool:
        """Should forwarding ``filter`` toward ``neighbour`` be withheld?

        Only under ``adv_pruned``, and only while no advertisement from
        that neighbour intersects the subscription — i.e. while its
        subtree provably produces nothing the subscription wants.
        """
        return self.adv_pruned and not self._adv_intersects(neighbour, filter)

    def _covered_by_peer_advert(self, source: Address, filter: Filter) -> bool:
        """Is ``filter`` covered by another advertisement from ``source``?

        Used to skip unblock/re-prune scans: a covering advertisement
        from the same source admits a superset of notifications, so it
        already justifies (or keeps justifying) every subscription the
        covered one could.
        """
        if self.indexed:
            poset = self._adv_in.get(source)
            if poset is None:
                return False
            own = self._adv_in_ids.get((source, filter))
            return any(pid != own for pid in poset.covering(filter))
        return any(
            advert != filter and filter_covers(advert, filter)
            for advert in self.adverts_by_source.get(source, ())
        )

    def _unblock_subscriptions(self, neighbour: Address, advert: Filter) -> None:
        """Forward the stored subscriptions a new advertisement unblocks.

        Any subscription intersecting the advertisement now has a
        producer in the neighbour's subtree; ``_forward_filter``'s
        duplicate/covering suppression keeps the scan idempotent.  A
        covering advertisement already stored from the same neighbour
        means every such subscription was unblocked before — skip.
        """
        if self._covered_by_peer_advert(neighbour, advert):
            return
        for source, subs in list(self.subs_by_source.items()):
            if source == neighbour:
                continue
            for sub in list(subs):
                if not filters_intersect(advert, sub.filter):
                    continue
                self._forward_filter(
                    neighbour, sub.filter,
                    self._sub_paths.get((source, sub.filter), ()),
                    self.forwarded, self._fwd_posets,
                    self._fwd_ids, self._fwd_sent, Subscribe,
                )

    def _reprune_subscriptions(self, neighbour: Address, advert: Filter) -> None:
        """Retract forwarded subscriptions a withdrawn advert justified.

        Symmetric to :meth:`_unblock_subscriptions`: a subscription
        forwarded toward the neighbour is withdrawn once no remaining
        advertisement from that neighbour intersects it.  Subscriptions
        the retracted one was masking need no restore — anything they
        intersect, it intersects too, so they are equally unjustified.
        """
        if self._covered_by_peer_advert(neighbour, advert):
            return
        already = self.forwarded.get(neighbour)
        if not already:
            return
        ids = self._fwd_ids.get(neighbour, {})
        poset = self._fwd_posets.get(neighbour)
        for filter in list(already):
            if not filters_intersect(advert, filter):
                continue  # never depended on the withdrawn advertisement
            if self._adv_intersects(neighbour, filter):
                continue  # still justified by another advertisement
            already.remove(filter)
            if self.indexed and filter in ids and poset is not None:
                poset.remove(ids.pop(filter))
            self._fwd_sent.get(neighbour, {}).pop(filter, None)
            self._send_control(neighbour, Unsubscribe(filter))

    # ------------------------------------------------------------------
    # Indexed-fabric helpers (shared by subscriptions and advertisements)
    # ------------------------------------------------------------------
    def _send_control(self, neighbour: Address, payload) -> None:
        self.control_counts[type(payload).__name__] += 1
        self.send(neighbour, payload, size_bytes=128)

    @staticmethod
    def _drop_source(sources: dict[Filter, set[Address]], filter: Filter, source: Address) -> None:
        members = sources.get(filter)
        if members is not None:
            members.discard(source)
            if not members:
                del sources[filter]

    def _forward_filter(
        self,
        neighbour: Address,
        filter: Filter,
        path: tuple[Address, ...],
        forwarded: dict[Address, list[Filter]],
        posets: dict[Address, CoveringPoset],
        ids_by_neighbour: dict[Address, dict[Filter, int]],
        sent_paths: dict[Address, dict[Filter, frozenset]],
        forward_msg,
    ) -> None:
        """Push ``filter`` toward a neighbour unless it is redundant there.

        Under covering, a filter whose notifications the neighbour already
        receives (some forwarded filter covers it, itself included) is
        suppressed; with covering disabled only exact duplicates are — the
        ablation baseline measured in benchmark A1.

        ``path`` is the copy's stored source path (this broker appends
        itself on the wire).  A neighbour on the path has necessarily
        seen the filter, so the flood never crosses a cycle twice.  An
        already-forwarded filter arriving again over a narrower chain is
        re-sent with the narrowed path (the intersection of every chain
        pushed so far), so the neighbour learns the filter no longer
        depends on the brokers the original path crossed — without this,
        two identical filters from different origins would collapse into
        one path and starve redundant routes of routing state.
        """
        if neighbour in path:
            return
        already = forwarded.setdefault(neighbour, [])
        sent = sent_paths.setdefault(neighbour, {})
        if self.indexed:
            poset = posets.setdefault(neighbour, CoveringPoset())
            ids = ids_by_neighbour.setdefault(neighbour, {})
            if filter in ids:
                self._narrow_forwarded(neighbour, filter, path, sent, forward_msg)
                return
            if self.covering_enabled and poset.covers_any(filter):
                return
            ids[filter] = poset.add(filter)
        else:
            if filter in already:
                self._narrow_forwarded(neighbour, filter, path, sent, forward_msg)
                return
            if self.covering_enabled and any(
                filter_covers(existing, filter) for existing in already
            ):
                return
        already.append(filter)
        sent[filter] = frozenset(path)
        self._send_control(neighbour, forward_msg(filter, path + (self.addr,)))

    def _narrow_forwarded(
        self,
        neighbour: Address,
        filter: Filter,
        path: tuple[Address, ...],
        sent: dict[Filter, frozenset],
        forward_msg,
    ) -> None:
        """Re-send an already-forwarded filter whose path just narrowed."""
        old = sent.get(filter)
        new = frozenset(path) if old is None else old & frozenset(path)
        if old is not None and new == old:
            return
        sent[filter] = new
        narrowed = tuple(x for x in path if x in new)
        self._send_control(neighbour, forward_msg(filter, narrowed + (self.addr,)))

    def _retract_forwarded(
        self,
        neighbour: Address,
        filter: Filter,
        store_poset: CoveringPoset,
        sources: dict[Filter, set[Address]],
        paths: dict[tuple[Address, Filter], tuple[Address, ...]],
        forwarded: dict[Address, list[Filter]],
        posets: dict[Address, CoveringPoset],
        ids_by_neighbour: dict[Address, dict[Filter, int]],
        sent_paths: dict[Address, dict[Filter, frozenset]],
        retract_msg,
        restore_msg,
        restore_pruned: bool = False,
    ) -> None:
        """Withdraw ``filter`` from a neighbour and re-forward what it masked.

        A stored filter can only have been suppressed (never forwarded)
        because some forwarded filter covered it, so the candidates for
        re-forwarding are exactly the store poset's ``covered_by`` set of
        the withdrawn filter — a poset lookup instead of a rescan of the
        whole store.  ``restore_pruned`` applies advertisement pruning to
        the restores (subscription retractions only): a masked filter no
        advertisement justifies stays parked until one arrives.
        """
        already = forwarded.setdefault(neighbour, [])
        ids = ids_by_neighbour.setdefault(neighbour, {})
        poset = posets.setdefault(neighbour, CoveringPoset())
        if filter not in ids:
            return
        survivors = [src for src in sources.get(filter, ()) if src != neighbour]
        if survivors:
            # Still stored from elsewhere: the neighbour keeps it, but
            # the departed copy may have been narrowing the sent path —
            # recompute it from the surviving chains.
            self._rewiden_forwarded(
                neighbour, filter,
                [paths.get((src, filter), ()) for src in survivors],
                forwarded, sent_paths, restore_msg,
            )
            return
        already.remove(filter)
        poset.remove(ids.pop(filter))
        sent_paths.setdefault(neighbour, {}).pop(filter, None)
        self._send_control(neighbour, retract_msg(filter))
        for pid in store_poset.covered_by(filter):
            masked_source, masked = store_poset.payload(pid)
            if masked_source == neighbour:
                continue
            if restore_pruned and self._sub_blocked(neighbour, masked):
                continue
            # Duplicate/covering/path suppression lives in
            # _forward_filter (the duplicate check there is explicit
            # because filter_covers is not reflexive for range
            # constraints over strings/bools).
            self._forward_filter(
                neighbour, masked, paths.get((masked_source, masked), ()),
                forwarded, posets, ids_by_neighbour, sent_paths, restore_msg,
            )

    # ------------------------------------------------------------------
    # Advertisements
    # ------------------------------------------------------------------
    def _store_advertisement(
        self,
        source: Address,
        filter: Filter,
        path: tuple[Address, ...] = (),
        path_reset: bool = False,
    ) -> None:
        if self.addr in path:
            return  # a reflection of our own forwarding around a cycle
        adverts = self.adverts_by_source.setdefault(source, [])
        if self.indexed:
            known = source in self._adv_sources.get(filter, ())
        else:
            known = filter in adverts
        if known:
            if path_reset:
                if self._widen_stored(source, filter, path, self._adv_paths):
                    self._propagate_adv_widening(filter)
            else:
                self._narrow_stored(
                    source, filter, path, self._adv_paths,
                    self._propagate_advertisement,
                )
            return
        adverts.append(filter)
        if self.indexed:
            key = (source, filter)
            self._adv_entry_ids[key] = self._adv_index.add(filter, payload=source)
            self._adv_poset_ids[key] = self._adv_poset.add(filter, payload=key)
            self._adv_in_ids[key] = self._adv_in.setdefault(
                source, CoveringPoset()
            ).add(filter)
            self._adv_sources.setdefault(filter, set()).add(source)
        self._adv_paths[(source, filter)] = path
        self._propagate_advertisement(source, filter, path)
        if self.rv is not None:
            self.rv.on_advertise(source, filter)
        if self.adv_pruned and source in self.neighbours:
            # Deferred re-propagation: the new advertisement may unblock
            # subscriptions previously pruned toward its source.
            self._unblock_subscriptions(source, filter)

    def _propagate_advertisement(
        self, source: Address, filter: Filter, path: tuple[Address, ...]
    ) -> None:
        if self.rv is not None:
            return  # dht mode: adverts register at their discovery root
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            self._forward_filter(
                neighbour, filter, path, self.adverts_forwarded,
                self._advfwd_posets, self._advfwd_ids, self._advfwd_sent,
                Advertise,
            )

    def _remove_advertisement(self, source: Address, filter: Filter) -> None:
        adverts = self.adverts_by_source.get(source, [])
        removed = False
        if filter in adverts:
            adverts.remove(filter)
            removed = True
            self._adv_paths.pop((source, filter), None)
            if self.indexed:
                key = (source, filter)
                if key in self._adv_entry_ids:
                    self._adv_index.remove(self._adv_entry_ids.pop(key))
                    self._adv_poset.remove(self._adv_poset_ids.pop(key))
                    self._drop_source(self._adv_sources, filter, source)
                if key in self._adv_in_ids:
                    poset = self._adv_in[source]
                    poset.remove(self._adv_in_ids.pop(key))
                    if not len(poset):
                        del self._adv_in[source]
        if removed and self.rv is not None:
            self.rv.on_unadvertise(source, filter)
        if removed and self.adv_pruned and source in self.neighbours:
            # Symmetric retraction: subscriptions only this advertisement
            # justified are withdrawn from its source again.
            self._reprune_subscriptions(source, filter)
        if self.indexed:
            for neighbour in self.neighbours:
                if neighbour == source:
                    continue
                self._retract_forwarded(
                    neighbour,
                    filter,
                    store_poset=self._adv_poset,
                    sources=self._adv_sources,
                    paths=self._adv_paths,
                    forwarded=self.adverts_forwarded,
                    posets=self._advfwd_posets,
                    ids_by_neighbour=self._advfwd_ids,
                    sent_paths=self._advfwd_sent,
                    retract_msg=Unadvertise,
                    restore_msg=Advertise,
                )
            return
        for neighbour in self.neighbours:
            if neighbour == source:
                continue
            remaining = [
                (src, f)
                for src, filters in self.adverts_by_source.items()
                if src != neighbour
                for f in filters
            ]
            already = self.adverts_forwarded.setdefault(neighbour, [])
            if filter in already and not any(f == filter for _, f in remaining):
                already.remove(filter)
                self._advfwd_sent.get(neighbour, {}).pop(filter, None)
                self._send_control(neighbour, Unadvertise(filter))
                # Re-forward anything the removed advertisement was masking,
                # mirroring _remove_subscription: without this an
                # Unadvertise silently strips a neighbour of adverts whose
                # producers are still live (duplicate/covering/path
                # suppression lives in _forward_filter).
                for src, f in remaining:
                    self._forward_filter(
                        neighbour, f, self._adv_paths.get((src, f), ()),
                        self.adverts_forwarded, self._advfwd_posets,
                        self._advfwd_ids, self._advfwd_sent, Advertise,
                    )
            elif filter in already:
                self._rewiden_forwarded(
                    neighbour, filter, self._adv_source_paths(filter, neighbour),
                    self.adverts_forwarded, self._advfwd_sent, Advertise,
                )

    def advertisements(self) -> list[Filter]:
        """Every advertisement this broker knows about (all sources)."""
        return [f for filters in self.adverts_by_source.values() for f in filters]

    def advertised(self, notification: Notification) -> bool:
        """Would this notification fall under some known advertisement?"""
        if self.indexed:
            return bool(self._adv_index.match(notification))
        return any(f.matches(notification) for f in self.advertisements())

    def control_state_size(self) -> int:
        """Routing-relevant control entries held by this broker.

        The E5 scale phase's comparison metric.  Flood modes count every
        stored and forwarded filter (subscriptions and advertisements) —
        the O(global filters) burden rendezvous routing exists to shed.
        dht mode counts the rendezvous engine's membership, tree, and
        registry entries plus the broker's own local filter store.
        """
        local = sum(len(subs) for subs in self.subs_by_source.values()) + sum(
            len(filters) for filters in self.adverts_by_source.values()
        )
        if self.rv is not None:
            return local + self.rv.state_size()
        return local + sum(
            len(filters) for filters in self.forwarded.values()
        ) + sum(len(filters) for filters in self.adverts_forwarded.values())

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _process_publication(
        self,
        source: Address,
        notification: Notification,
        pub_id: tuple[Address, int] | None = None,
    ) -> None:
        """Route one publication: first copy wins, the rest are dropped.

        An untagged publication (legacy producers sending bare
        ``Publish``) is stamped here, so every copy this broker forwards
        is recognisable if a cycle routes it back.
        """
        if pub_id is None:
            pub_id = (self.addr, self._pub_seq)
            self._pub_seq += 1
        if self.pub_dedup.seen(pub_id, self.sim.now):
            self.duplicates_suppressed += 1
            return
        self.notifications_processed += 1
        if self.metrics is not None:
            self.metrics.observe(notification)
        if self.advert_on_first_publish:
            self._maybe_auto_advertise(source, notification)
        size = notification.size_bytes()
        if self.indexed:
            matched = self._sub_index.match(notification)
            if not matched:
                return
            index = self._sub_index
            interested = {index.payload(fid) for fid in matched}
            for dest in list(self.subs_by_source):
                if dest == source or dest not in interested:
                    continue
                self._deliver(dest, notification, size, pub_id)
            return
        for dest, subs in list(self.subs_by_source.items()):
            if dest == source:
                continue
            if not any(s.filter.matches(notification) for s in subs):
                continue
            self._deliver(dest, notification, size, pub_id)

    def _maybe_auto_advertise(self, source: Address, notification: Notification) -> None:
        """Synthesise an advertisement for a non-advertising local producer.

        Only first-hop traffic qualifies (``source`` is an attached
        client): remote publications were either advertised at their own
        first hop or are legacy traffic whose broker carries this knob.
        The synthesised filter is the publication's type equality when a
        ``type`` attribute is present — the shape adv_pruned routing
        prunes on — falling back to the attribute-existence skeleton.
        """
        if source not in self.client_addrs:
            return
        if "type" in notification:
            advert = Filter(eq("type", notification["type"]))
        else:
            advert = Filter(*(exists(name) for name in sorted(notification.keys())))
        key = (source, advert)
        if key in self._auto_adverts:
            return
        self._auto_adverts.add(key)
        self._store_advertisement(source, advert)

    def _process_publication_batch(
        self,
        source: Address,
        items: tuple | list,
    ) -> None:
        """Route a burst of publications through one index traversal.

        Dedup, counters and the auto-advertise hook run per item in
        batch order — their outcomes cannot depend on batching because
        each decision reads only per-publication state.  The survivors
        share one :meth:`PredicateIndex.match_batch` sweep, and each
        destination receives its matched subset as a single batch, in
        publish order.
        """
        survivors: list[tuple[Notification, tuple[Address, int]]] = []
        for notification, pub_id in items:
            if pub_id is None:
                pub_id = (self.addr, self._pub_seq)
                self._pub_seq += 1
            if self.pub_dedup.seen(pub_id, self.sim.now):
                self.duplicates_suppressed += 1
                continue
            self.notifications_processed += 1
            if self.metrics is not None:
                self.metrics.observe(notification)
            if self.advert_on_first_publish:
                self._maybe_auto_advertise(source, notification)
            survivors.append((notification, pub_id))
        if not survivors:
            return
        per_dest: dict[Address, list] = {}
        if self.indexed:
            matched_sets = self._sub_index.match_batch(
                [notification for notification, _ in survivors]
            )
            payload = self._sub_index.payload
            for (notification, pub_id), matched in zip(survivors, matched_sets):
                if not matched:
                    continue
                interested = {payload(fid) for fid in matched}
                for dest in list(self.subs_by_source):
                    if dest == source or dest not in interested:
                        continue
                    per_dest.setdefault(dest, []).append((notification, pub_id))
        else:
            for notification, pub_id in survivors:
                for dest, subs in list(self.subs_by_source.items()):
                    if dest == source:
                        continue
                    if not any(s.filter.matches(notification) for s in subs):
                        continue
                    per_dest.setdefault(dest, []).append((notification, pub_id))
        for dest, batch in per_dest.items():
            self._deliver_batch(dest, batch)

    def publish_batch(
        self,
        notifications: list,
        source: Address | None = None,
    ) -> None:
        """Inject a burst of locally-originated publications.

        Each notification is stamped with a fresh ``pub_id`` exactly as
        the single-publication path would; with ``batched`` off the
        burst is unbundled through the one-at-a-time path instead.
        """
        items = [(notification, None) for notification in notifications]
        if self.rv is not None:
            for notification, pub_id in items:
                self.inject_publication(source, notification, pub_id)
            return
        if self.batched:
            self._process_publication_batch(source, items)
        else:
            for notification, pub_id in items:
                self._process_publication(source, notification, pub_id)

    def inject_publication(
        self,
        source: Address | None,
        notification: Notification,
        pub_id: tuple[Address, int] | None = None,
    ) -> None:
        """Entry point for first-hop traffic (clients, local producers).

        Flood modes process in place — matching and neighbour forwarding
        are one step.  In dht mode the publication is *also* handed to
        the rendezvous engine, which routes a copy toward each key's
        root for tree multicast; the local processing step still runs
        first so attached subscribers hear about it without a round
        trip, with ``OriginFloorCache`` dedup collapsing any echo.
        """
        if self.rv is None:
            self._process_publication(source, notification, pub_id)
            return
        if pub_id is None:
            pub_id = (self.addr, self._pub_seq)
            self._pub_seq += 1
        self._process_publication(source, notification, pub_id)
        self.rv.publish(notification, pub_id)

    def _deliver(
        self,
        dest: Address,
        notification: Notification,
        size: int,
        pub_id: tuple[Address, int] | None = None,
    ) -> None:
        if dest in self.proxies:
            self.proxies[dest].append(notification)  # buffer for the mobile client
        elif dest in self.client_addrs:
            self.notifications_delivered += 1
            self.send(dest, Notify(notification), size_bytes=size)
        elif dest in self.neighbours:
            self.send(dest, Publish(notification, pub_id), size_bytes=size)

    def _deliver_batch(self, dest: Address, batch: list) -> None:
        """Deliver a publish-ordered batch to one destination.

        Clients get one :class:`NotifyBatch`, neighbours one
        :class:`PublishBatch` (pub_ids intact for their dedup), proxies
        buffer in order — mirroring :meth:`_deliver` case for case.
        """
        if dest in self.proxies:
            self.proxies[dest].extend(notification for notification, _ in batch)
        elif dest in self.client_addrs:
            self.notifications_delivered += len(batch)
            size = sum(notification.size_bytes() for notification, _ in batch)
            self.send(
                dest,
                NotifyBatch(tuple(notification for notification, _ in batch)),
                size_bytes=size,
            )
        elif dest in self.neighbours:
            size = sum(notification.size_bytes() for notification, _ in batch)
            self.send(dest, PublishBatch(tuple(batch)), size_bytes=size)

    # ------------------------------------------------------------------
    # Mobility (Mobikit §3: static proxies for mobile entities)
    # ------------------------------------------------------------------
    def _handle_move_out(self, client: Address) -> None:
        if client in self.client_addrs:
            self.proxies.setdefault(client, [])

    def _handle_move_in(self, msg: MoveIn) -> None:
        self.attach_client(msg.client)
        for filter in msg.filters:
            self._store_subscription(msg.client, filter)
        if msg.old_broker is not None and msg.old_broker != self.addr:
            self.send(msg.old_broker, TransferRequest(msg.client, self.addr))
        elif msg.client in self.proxies:
            self._flush_proxy(msg.client)

    def _handle_transfer_request(self, msg: TransferRequest) -> None:
        buffered = tuple(self.proxies.pop(msg.client, ()))
        filters = tuple(
            s.filter for s in self.subs_by_source.get(msg.client, [])
        )
        self.client_addrs.discard(msg.client)
        for filter in filters:
            self._remove_subscription(msg.client, filter)
        # A service migration names a successor endpoint: the buffered
        # notifications belong to the replacement instance, not to the
        # torn-down original.
        recipient = msg.successor if msg.successor is not None else msg.client
        self.send(msg.new_broker, Transfer(recipient, buffered, filters), size_bytes=512)

    def _handle_transfer(self, msg: Transfer) -> None:
        # Defensive re-registration: the Transfer is self-contained, so
        # the handover holds even if the MoveIn carried a stale filter
        # list (registering an already-known filter is a no-op).  Only
        # while the client is still attached here, though — a late
        # Transfer for a client that has already moved on again must not
        # resurrect it with ghost subscriptions.
        if msg.client in self.client_addrs:
            for filter in msg.filters:
                self._store_subscription(msg.client, filter)
        for notification in msg.buffered:
            if msg.client in self.proxies:
                # The client went dark again before the handover landed:
                # keep buffering rather than sending into the void.
                self.proxies[msg.client].append(notification)
            else:
                self.notifications_delivered += 1
                self.send(msg.client, Notify(notification), size_bytes=notification.size_bytes())

    def _flush_proxy(self, client: Address) -> None:
        for notification in self.proxies.pop(client, []):
            self.notifications_delivered += 1
            self.send(client, Notify(notification), size_bytes=notification.size_bytes())

    def _reset_and_sync(self, neighbour: Address) -> None:
        """Clear the per-link forwarding bookkeeping and re-push everything.

        Used when the far side dropped its half of a link we kept: our
        records of what it holds are stale and would suppress the
        re-push, so they are discarded before the full state sync.
        """
        for per_link in (
            self.forwarded, self._fwd_posets, self._fwd_ids, self._fwd_sent,
            self.adverts_forwarded, self._advfwd_posets, self._advfwd_ids,
            self._advfwd_sent,
        ):
            per_link.pop(neighbour, None)
        self.forwarded.setdefault(neighbour, [])
        self._sync_new_neighbour(neighbour)

    def _handle_resync(self, src: Address) -> None:
        """The neighbour reset our link and is about to replay its state.

        Everything this link previously told us is stale on both
        directions: the inbound entries it may have retracted during the
        outage (those Unsubscribe/Unadvertise messages died with the
        link) are withdrawn, and the outbound bookkeeping claiming it
        still holds our filters is cleared before the full re-push.  The
        sender's replay follows this message on the same FIFO link, so
        its live state is restored immediately after.  Ignored when we
        do not consider ``src`` a neighbour (our own detector dropped
        the link, taking all of this state with it, and will resync when
        it notices the revival itself).
        """
        if src not in self.neighbours:
            return
        self._forget_neighbour(src)
        self._reset_and_sync(src)

    # ------------------------------------------------------------------
    def handle_message(self, src: Address, payload) -> None:
        if isinstance(payload, Subscribe):
            self._store_subscription(
                src, payload.filter, payload.path, payload.path_reset
            )
        elif isinstance(payload, Unsubscribe):
            self._remove_subscription(src, payload.filter)
        elif isinstance(payload, Advertise):
            self._store_advertisement(
                src, payload.filter, payload.path, payload.path_reset
            )
        elif isinstance(payload, Unadvertise):
            self._remove_advertisement(src, payload.filter)
        elif isinstance(payload, Publish):
            self.inject_publication(src, payload.notification, payload.pub_id)
        elif isinstance(payload, PublishBatch):
            if self.rv is not None:
                # dht mode: unbundle through the rendezvous entry point —
                # each publication keys its own tree.
                for notification, pub_id in payload.items:
                    self.inject_publication(src, notification, pub_id)
            elif self.batched:
                self._process_publication_batch(src, payload.items)
            else:
                # Unbundle: a batch is just its publications in order.
                for notification, pub_id in payload.items:
                    self._process_publication(src, notification, pub_id)
        elif isinstance(payload, Heartbeat):
            if self.failure_detector is not None:
                self.failure_detector.on_heartbeat(src, payload)
        elif isinstance(payload, Resync):
            self._handle_resync(src)
        elif isinstance(payload, MoveOut):
            self._handle_move_out(src)
        elif isinstance(payload, MoveIn):
            self._handle_move_in(payload)
        elif isinstance(payload, TransferRequest):
            self._handle_transfer_request(payload)
        elif isinstance(payload, Transfer):
            self._handle_transfer(payload)
        elif self.rv is not None and self.rv.handle(src, payload):
            pass
        else:
            raise TypeError(f"unknown broker message: {payload!r}")


# Event types that are control-plane traffic, not service demand: the
# metrics layer must not let its own plumbing (or the failure detector's)
# pollute the demand-age signal migrations key on.
CONTROL_EVENT_TYPES = frozenset(
    {"resource", "node-leaving", "node-failed", "node-recovered"}
)


class BrokerMetrics:
    """Export one broker's load/queue/latency digest on the event fabric.

    §4.4's monitoring loop starts here: the broker itself periodically
    publishes a ``resource`` event (through its own publication path, so
    the metrics ride the same fabric as the traffic they describe)
    carrying

    * ``load`` — processed-notification rate over the interval, as a
      fraction of ``capacity_eps`` (events/second the host is sized for);
    * ``queue_depth`` — notifications parked in mobility proxy buffers;
    * ``event_age`` — mean of ``now - notification.time`` over the
      service publications processed this interval.  A host far from the
      traffic's producers sees events that are already old on arrival,
      so this is the decentralised delivery-latency signal a
      :class:`~repro.evolution.constraints.LoadConstraint` migrates on.
      Omitted entirely when the interval carried no service traffic.

    ``deploy_addr`` is the address migration targets should be deployed
    to (the thin server co-located with this broker); it defaults to the
    broker's own address.
    """

    def __init__(
        self,
        broker: BrokerNode,
        node_id: str,
        period_s: float = 20.0,
        deploy_addr: Address | None = None,
        capacity_eps: float = 200.0,
        capacity: float = 1.0,
        jitter: float = 0.0,
        start_delay: float | None = None,
        ignore_types: frozenset = CONTROL_EVENT_TYPES,
    ):
        self.broker = broker
        self.node_id = node_id
        self.period_s = period_s
        self.deploy_addr = deploy_addr if deploy_addr is not None else broker.addr
        self.capacity_eps = capacity_eps
        self.capacity = capacity
        self.ignore_types = ignore_types
        self.region = self._region_of(broker.position)
        self.published = 0
        self._age_sum = 0.0
        self._age_count = 0
        self._last_processed = broker.notifications_processed
        broker.metrics = self
        rng = broker.sim.rng_for(f"metrics-{node_id}") if jitter else None
        self._task = PeriodicTask(
            broker.sim,
            period_s,
            self._publish_metrics,
            jitter=jitter,
            start_delay=start_delay,
            rng=rng,
        )

    @staticmethod
    def _region_of(position: Position) -> str:
        for region in WORLD_REGIONS:
            if region.contains(position):
                return region.name
        return "other"

    def observe(self, notification: Notification) -> None:
        """Called by the broker for every publication it processes."""
        if notification.event_type in self.ignore_types:
            return
        if "time" not in notification:
            return
        self._age_sum += max(0.0, self.broker.sim.now - notification.time)
        self._age_count += 1

    def _publish_metrics(self) -> None:
        broker = self.broker
        processed = broker.notifications_processed - self._last_processed
        self._last_processed = broker.notifications_processed
        rate = processed / self.period_s
        queue_depth = sum(len(buffer) for buffer in broker.proxies.values())
        attrs: dict = {
            "node": self.node_id,
            "addr": int(self.deploy_addr),
            "region": self.region,
            "lat": broker.position.lat,
            "lon": broker.position.lon,
            "load": round(min(1.0, rate / self.capacity_eps), 4),
            "rate": round(rate, 4),
            "queue_depth": queue_depth,
            "capacity": self.capacity,
        }
        if self._age_count:
            attrs["event_age"] = self._age_sum / self._age_count
        self._age_sum = 0.0
        self._age_count = 0
        self.published += 1
        # Injected as a locally-originated publication: the digest routes
        # through the overlay exactly like the traffic it measures.
        broker.inject_publication(None, make_event("resource", time=broker.sim.now, **attrs))

    def stop(self) -> None:
        self._task.stop()


class SienaClient(Host):
    """An event producer/consumer attached to one broker.

    The client side of the paper's access protocol: :meth:`subscribe` /
    :meth:`unsubscribe` register interest, :meth:`advertise` /
    :meth:`unadvertise` declare publication shapes (what ``adv_pruned``
    brokers route by), :meth:`publish` stamps a per-client sequence id
    (the overlay's exactly-once dedup key) and :meth:`publish_batch`
    sends a burst as one wire message for the broker's ``batched``
    path.  Deliveries land in :attr:`received` as ``(sim-time,
    notification)`` pairs and fan out to any registered
    :attr:`handlers`.  Mobility (MoveIn/MoveOut hand-off between
    brokers) lives in :class:`~repro.events.mobility.MobileClient`.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        position: Position,
        broker: BrokerNode,
    ):
        super().__init__(sim, network, position)
        self.broker_addr = broker.addr
        broker.attach_client(self.addr)
        self.filters: list[Filter] = []
        self.received: list[tuple[float, Notification]] = []
        self.handlers: list[Callable[[Notification], None]] = []
        self._pub_seq = 0

    def subscribe(self, filter: Filter) -> None:
        self.filters.append(filter)
        self.send(self.broker_addr, Subscribe(filter), size_bytes=128)

    def unsubscribe(self, filter: Filter) -> None:
        if filter in self.filters:
            self.filters.remove(filter)
        self.send(self.broker_addr, Unsubscribe(filter), size_bytes=128)

    def advertise(self, filter: Filter) -> None:
        """Declare what this client will publish (§3's advertisements)."""
        self.send(self.broker_addr, Advertise(filter), size_bytes=128)

    def unadvertise(self, filter: Filter) -> None:
        self.send(self.broker_addr, Unadvertise(filter), size_bytes=128)

    def publish(self, notification: Notification) -> None:
        pub_id = (self.addr, self._pub_seq)
        self._pub_seq += 1
        self.send(
            self.broker_addr,
            Publish(notification, pub_id),
            size_bytes=notification.size_bytes(),
        )

    def publish_batch(self, notifications: list) -> None:
        """Publish a burst as one wire message, pub_ids stamped in order.

        The sequence numbers are exactly those ``publish`` would have
        assigned, so dedup state downstream cannot tell the difference.
        """
        items = []
        for notification in notifications:
            items.append((notification, (self.addr, self._pub_seq)))
            self._pub_seq += 1
        self.send(
            self.broker_addr,
            PublishBatch(tuple(items)),
            size_bytes=sum(n.size_bytes() for n in notifications),
        )

    def handle_message(self, src: Address, payload) -> None:
        if isinstance(payload, Notify):
            self.received.append((self.sim.now, payload.notification))
            for handler in list(self.handlers):
                handler(payload.notification)
        elif isinstance(payload, NotifyBatch):
            for notification in payload.notifications:
                self.received.append((self.sim.now, notification))
                for handler in list(self.handlers):
                    handler(notification)


def build_broker_tree(
    sim: Simulator,
    network: Network,
    count: int,
    branching: int = 3,
    covering_enabled: bool = True,
    indexed: bool = True,
    adv_pruned: bool = False,
    batched: bool = False,
    advert_on_first_publish: bool = False,
    seen_ttl: float = 30.0,
    heartbeat: "HeartbeatConfig | None" = None,
    routing: str = "flood",
    rv_refresh: float = 1.0,
    shards: int = 1,
) -> list[BrokerNode]:
    """A tree-shaped (hence acyclic) broker overlay spread across regions.

    Passing a :class:`~repro.events.failure.HeartbeatConfig` as
    ``heartbeat`` attaches a failure detector to every broker, making
    the overlay self-healing out of the box.
    """
    rng = sim.rng_for("broker-build")
    brokers = [
        BrokerNode(
            sim,
            network,
            WORLD_REGIONS[i % len(WORLD_REGIONS)].random_position(rng),
            covering_enabled=covering_enabled,
            indexed=indexed,
            adv_pruned=adv_pruned,
            batched=batched,
            advert_on_first_publish=advert_on_first_publish,
            seen_ttl=seen_ttl,
            routing=routing,
            rv_refresh=rv_refresh,
            shards=shards,
        )
        for i in range(count)
    ]
    for index in range(1, count):
        parent = brokers[(index - 1) // branching]
        brokers[index].connect(parent)
    if heartbeat is not None:
        install_detectors(brokers, heartbeat)
    return brokers


def build_broker_mesh(
    sim: Simulator,
    network: Network,
    count: int,
    branching: int = 3,
    extra_links: int = 2,
    covering_enabled: bool = True,
    indexed: bool = True,
    adv_pruned: bool = False,
    batched: bool = False,
    advert_on_first_publish: bool = False,
    seen_ttl: float = 30.0,
    heartbeat: "HeartbeatConfig | None" = None,
    placement: str = "latency",
    stretch_bound: float = 3.0,
    routing: str = "flood",
    rv_refresh: float = 1.0,
    shards: int = 1,
) -> list[BrokerNode]:
    """A broker mesh: the :func:`build_broker_tree` overlay plus
    ``extra_links`` redundant links between non-adjacent brokers.

    Every extra link closes a cycle, so any single link on that cycle
    can fail without partitioning the overlay — the fault-tolerance
    property the E5 benchmark's failure phase measures.  Where the
    links land is the ``placement`` policy:

    * ``"latency"`` (default) — the greedy latency/disjointness-aware
      plan from :func:`repro.events.placement.plan_extra_links`: each
      chord maximizes newly-protected tree edges subject to a direct
      latency at most ``stretch_bound`` times the mean tree-link delay.
      Deterministic given broker positions (which the builder draws
      from ``sim.rng_for``, so the same simulator seed still yields the
      same mesh).
    * ``"random"`` — uniformly random non-adjacent pairs, seeded
      through ``sim.rng_for``; the ablation the E5 placement phase
      prices the planner against.

    ``branching`` (default 3) shapes the underlying tree and
    ``extra_links`` (default 2) counts the chords; passing a
    :class:`~repro.events.failure.HeartbeatConfig` as ``heartbeat``
    attaches a failure detector to every broker, making the mesh
    self-healing.  The remaining keywords (``covering_enabled``,
    ``indexed``, ``adv_pruned``, ``batched``, ``advert_on_first_publish``,
    ``seen_ttl``, ``routing``, ``rv_refresh``, ``shards``) pass through
    to every :class:`BrokerNode` — see its docstring for what each
    ablates and its default.
    """
    brokers = build_broker_tree(
        sim,
        network,
        count,
        branching=branching,
        covering_enabled=covering_enabled,
        indexed=indexed,
        adv_pruned=adv_pruned,
        batched=batched,
        advert_on_first_publish=advert_on_first_publish,
        seen_ttl=seen_ttl,
        heartbeat=heartbeat,
        routing=routing,
        rv_refresh=rv_refresh,
        shards=shards,
    )
    if placement == "latency":
        tree_edges = [(index, (index - 1) // branching) for index in range(1, count)]
        plan = plan_extra_links(
            [broker.position for broker in brokers],
            tree_edges,
            extra_links,
            network.latency,
            stretch_bound=stretch_bound,
        )
        for i, j in plan:
            brokers[i].connect(brokers[j])
        return brokers
    if placement != "random":
        raise ValueError(f"unknown placement policy: {placement!r}")
    rng = sim.rng_for("broker-mesh")
    candidates = [
        (i, j)
        for i in range(count)
        for j in range(i + 1, count)
        if brokers[j].addr not in brokers[i].neighbours
    ]
    rng.shuffle(candidates)
    for i, j in candidates[:extra_links]:
        brokers[i].connect(brokers[j])
    return brokers


def build_dht_fleet(
    sim: Simulator,
    network: Network,
    count: int,
    indexed: bool = True,
    seen_ttl: float = 30.0,
    rv_refresh: float = 1.0,
    prefix_depth: int = 8,
) -> list[BrokerNode]:
    """A converged ``routing="dht"`` fleet built from global knowledge.

    Mirrors :func:`repro.overlay.pastry.fast_build`: leaf sets come from
    the sorted guid ring, prefix tables from geographically-closest
    candidates per (row, digit) bucket — the state Pastry's join
    protocol converges to, at O(N log N) build cost.  No overlay links
    are created (rendezvous routing addresses peers directly through
    the ring view), so the membership ``directory`` stays empty and the
    per-broker control state the scale benchmark measures is the honest
    O(log N) Pastry footprint.

    Knobs: ``indexed`` (default ``True``) selects the predicate-indexed
    matching fabric as on :class:`BrokerNode`; ``seen_ttl`` (default
    ``30.0`` s) bounds the per-origin dedup floor; ``rv_refresh``
    (default ``1.0`` s) is the rendezvous soft-state refresh period —
    lower heals faster, higher sends less control traffic;
    ``prefix_depth`` (default ``8``) caps the prefix-table rows built
    per broker, trading routing-table size against hop count at the
    bench's fleet sizes.  Use this builder for scale measurements
    (bench E5 ``dht_scale``); for protocol-level join/heal behaviour
    build small fleets organically via ``BrokerNode(routing="dht")``
    plus :meth:`BrokerNode.connect`.
    """
    rng = sim.rng_for("dht-fleet-build")
    brokers = [
        BrokerNode(
            sim,
            network,
            WORLD_REGIONS[i % len(WORLD_REGIONS)].random_position(rng),
            indexed=indexed,
            seen_ttl=seen_ttl,
            routing="dht",
            rv_refresh=rv_refresh,
        )
        for i in range(count)
    ]
    ordered = sorted(brokers, key=lambda b: b.rv.guid.value)
    total = len(ordered)
    half = ordered[0].rv.leaf_size // 2
    for index, broker in enumerate(ordered):
        for offset in range(1, min(half, total - 1) + 1):
            broker.rv.leaf.add(ordered[(index + offset) % total].rv.descriptor)
            broker.rv.leaf.add(ordered[(index - offset) % total].rv.descriptor)

    by_prefix: dict[str, list[BrokerNode]] = {}
    for broker in brokers:
        hex_id = broker.rv.guid.hex
        for depth in range(1, prefix_depth + 1):
            by_prefix.setdefault(hex_id[:depth], []).append(broker)

    for broker in brokers:
        hex_id = broker.rv.guid.hex
        for row in range(min(prefix_depth, GUID_DIGITS)):
            own_digit = broker.rv.guid.digit(row)
            for col in range(16):
                if col == own_digit:
                    continue
                candidates = by_prefix.get(hex_id[:row] + f"{col:x}")
                if not candidates:
                    continue
                best = min(
                    candidates[:16],
                    key=lambda c: broker.position.distance_km(c.position),
                )
                broker.rv.table.add(best.rv.descriptor)
    return brokers
