"""Pipeline assembly: fire bundles at thin servers, then wire the edges.

This is Figure 3 as executable code: a deployment agent pushes one signed
code bundle per component to its placement target, waits for each ack, then
issues the local/remote connect commands that assemble the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cingal.bundle import Bundle, BundleError, make_bundle
from repro.cingal.messages import (
    ConnectAck,
    ConnectLocal,
    ConnectRemote,
    DeployAck,
    Fire,
    Undeploy,
    UndeployAck,
)
from repro.net.geo import Position
from repro.net.host import Host
from repro.net.network import Address, Network
from repro.pipelines.spec import PipelineSpec
from repro.simulation import Future, Process, Simulator, spawn


class DeploymentAgent(Host):
    """A control endpoint that fires bundles and awaits acknowledgements."""

    def __init__(self, sim: Simulator, network: Network, position: Position):
        super().__init__(sim, network, position)
        self._pending_deploys: dict[str, Future] = {}
        self._pending_undeploys: dict[str, Future] = {}
        self._pending_connects: dict[int, Future] = {}
        self._next_req = 0

    def fire(self, target: Address, bundle: Bundle) -> Future:
        """Deploy ``bundle`` at ``target``; resolves to the DeployAck."""
        future = Future()
        self._pending_deploys[bundle.name] = future
        self.send(target, Fire(bundle), size_bytes=bundle.wire_size())
        return future

    def undeploy(self, target: Address, component_name: str) -> Future:
        """Tear down a deployed component; resolves to the UndeployAck."""
        future = Future()
        self._pending_undeploys[component_name] = future
        self.send(target, Undeploy(component_name), size_bytes=128)
        return future

    def connect_local(self, target: Address, src: str, dst: str) -> Future:
        self._next_req += 1
        future = Future()
        self._pending_connects[self._next_req] = future
        self.send(target, ConnectLocal(src, dst, self._next_req))
        return future

    def connect_remote(
        self, target: Address, src: str, dst_addr: Address, dst_component: str
    ) -> Future:
        self._next_req += 1
        future = Future()
        self._pending_connects[self._next_req] = future
        self.send(target, ConnectRemote(src, dst_addr, dst_component, self._next_req))
        return future

    def handle_message(self, src: Address, payload) -> None:
        if isinstance(payload, DeployAck):
            future = self._pending_deploys.pop(payload.bundle_name, None)
            if future is not None:
                future.set_result(payload)
        elif isinstance(payload, UndeployAck):
            future = self._pending_undeploys.pop(payload.component_name, None)
            if future is not None:
                future.set_result(payload)
        elif isinstance(payload, ConnectAck):
            future = self._pending_connects.pop(payload.req_id, None)
            if future is not None:
                future.set_result(payload)


def deploy_pipeline(
    sim: Simulator,
    agent: DeploymentAgent,
    spec: PipelineSpec,
    placement: dict[str, ThinServer],
    key: str,
) -> Process:
    """Deploy ``spec`` with components placed per ``placement``.

    Returns a process future that resolves to the pipeline name once every
    bundle is deployed and every edge wired; it fails on the first refusal.
    """
    spec.validate()
    missing = {c.name for c in spec.components} - set(placement)
    if missing:
        raise ValueError(f"no placement for components: {sorted(missing)}")

    def run():
        for component in spec.components:
            bundle = make_bundle(
                name=component.name,
                component=component.component,
                params=dict(component.params),
                capabilities=component.capabilities,
                key=key,
            )
            ack = yield agent.fire(placement[component.name].addr, bundle)
            if not ack.ok:
                raise BundleError(
                    f"deployment of {component.name!r} refused: {ack.error}"
                )
        for edge in spec.edges:
            src_server = placement[edge.src]
            dst_server = placement[edge.dst]
            if src_server is dst_server:
                ack = yield agent.connect_local(src_server.addr, edge.src, edge.dst)
            else:
                ack = yield agent.connect_remote(
                    src_server.addr, edge.src, dst_server.addr, edge.dst
                )
            if not ack.ok:
                raise BundleError(
                    f"wiring {edge.src}->{edge.dst} refused: {ack.error}"
                )
        return spec.name

    return spawn(sim, run(), name=f"deploy-{spec.name}")
