"""Pipeline components: the unit of composition in the matching engine.

Every component exposes ``put(event)`` — the same interface whether the
caller is a local upstream component, a remote connector, or a sensor
wrapper.  ``on_event`` returns the event(s) to pass downstream (or None to
drop), keeping components small and independent (§4.2).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.events.model import Notification


class PipelineComponent:
    """Base class; subclasses override :meth:`on_event`."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.downstream: list["PipelineComponent"] = []
        self.events_in = 0
        self.events_out = 0

    # -- wiring ----------------------------------------------------------
    def connect(self, other: "PipelineComponent") -> "PipelineComponent":
        """Wire this component's output to ``other``; returns ``other``."""
        if other not in self.downstream:
            self.downstream.append(other)
        return other

    def disconnect(self, other: "PipelineComponent") -> None:
        if other in self.downstream:
            self.downstream.remove(other)

    # -- event flow --------------------------------------------------------
    def put(self, event: Notification) -> None:
        """Receive one event (the paper's ``put(event)`` interface)."""
        self.events_in += 1
        result = self.on_event(event)
        if result is None:
            return
        if isinstance(result, Notification):
            self.emit(result)
        else:
            for out in result:
                self.emit(out)

    def on_event(self, event: Notification):
        """Transform/filter one event.  Default: pass through unchanged."""
        return event

    def emit(self, event: Notification) -> None:
        self.events_out += 1
        for component in list(self.downstream):
            component.put(event)

    def stop(self) -> None:
        """Release resources (timers, subscriptions).  Default: nothing."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} in={self.events_in} out={self.events_out}>"


class FunctionComponent(PipelineComponent):
    """Wrap a plain callable: ``event -> event | iterable | None``."""

    def __init__(self, fn: Callable[[Notification], object], name: str = ""):
        super().__init__(name or getattr(fn, "__name__", "fn"))
        self._fn = fn

    def on_event(self, event: Notification):
        return self._fn(event)


class SourceComponent(PipelineComponent):
    """An event source: call :meth:`inject` to push events into a pipeline."""

    def inject(self, event: Notification) -> None:
        self.events_in += 1
        self.emit(event)

    def on_event(self, event: Notification):
        return event


class Probe(PipelineComponent):
    """A sink that records everything it sees (used by tests and gauges)."""

    def __init__(self, name: str = "probe"):
        super().__init__(name)
        self.events: list[Notification] = []

    def on_event(self, event: Notification):
        self.events.append(event)
        return None
