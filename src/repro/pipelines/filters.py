"""Stock pipeline components: filtering, buffering, rate limiting (§4.2).

The paper's examples: "components perform filtering (e.g. transmitting
user-location events only when the distance moved exceeds a certain
threshold), buffering, communication with other pipelines, and so on."
"""

from __future__ import annotations

from typing import Callable

from repro.events.model import Notification
from repro.net.geo import Position, haversine_km
from repro.pipelines.component import PipelineComponent
from repro.simulation import Simulator


class TypeFilter(PipelineComponent):
    """Pass only events whose ``type`` attribute is in the allowed set."""

    def __init__(self, allowed: set[str], name: str = "type-filter"):
        super().__init__(name)
        self.allowed = set(allowed)

    def on_event(self, event: Notification):
        return event if event.event_type in self.allowed else None


class ThresholdFilter(PipelineComponent):
    """Pass a numeric attribute only when it moved more than ``delta``.

    Tracks the last *emitted* value per entity (the ``key`` attribute), so a
    slow drift eventually gets through — this is the standard sensor
    debounce.
    """

    def __init__(
        self,
        attribute: str,
        delta: float,
        key: str = "subject",
        name: str = "threshold-filter",
    ):
        super().__init__(name)
        self.attribute = attribute
        self.delta = delta
        self.key = key
        self._last: dict[object, float] = {}

    def on_event(self, event: Notification):
        if self.attribute not in event:
            return None
        value = event[self.attribute]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return None
        entity = event.get(self.key, "")
        last = self._last.get(entity)
        if last is not None and abs(value - last) < self.delta:
            return None
        self._last[entity] = float(value)
        return event


class DistanceFilter(PipelineComponent):
    """Pass location events only after the subject moved ``min_km``."""

    def __init__(self, min_km: float, key: str = "subject", name: str = "distance-filter"):
        super().__init__(name)
        self.min_km = min_km
        self.key = key
        self._last: dict[object, Position] = {}

    def on_event(self, event: Notification):
        if "lat" not in event or "lon" not in event:
            return None
        position = Position(float(event["lat"]), float(event["lon"]))
        entity = event.get(self.key, "")
        last = self._last.get(entity)
        if last is not None and haversine_km(last, position) < self.min_km:
            return None
        self._last[entity] = position
        return event


class DedupFilter(PipelineComponent):
    """Drop events identical to one seen in the last ``window`` seconds."""

    def __init__(self, sim: Simulator, window: float = 10.0, name: str = "dedup"):
        super().__init__(name)
        self._sim = sim
        self.window = window
        self._seen: dict[Notification, float] = {}

    def on_event(self, event: Notification):
        now = self._sim.now
        cutoff = now - self.window
        if len(self._seen) > 256:
            self._seen = {e: t for e, t in self._seen.items() if t >= cutoff}
        last = self._seen.get(event)
        if last is not None and last >= cutoff:
            return None
        self._seen[event] = now
        return event


class RateLimiter(PipelineComponent):
    """At most ``max_events`` per entity per ``period`` seconds."""

    def __init__(
        self,
        sim: Simulator,
        max_events: int,
        period: float,
        key: str = "subject",
        name: str = "rate-limiter",
    ):
        super().__init__(name)
        self._sim = sim
        self.max_events = max_events
        self.period = period
        self.key = key
        self._history: dict[object, list[float]] = {}

    def on_event(self, event: Notification):
        now = self._sim.now
        entity = event.get(self.key, "")
        history = [t for t in self._history.get(entity, []) if t > now - self.period]
        if len(history) >= self.max_events:
            self._history[entity] = history
            return None
        history.append(now)
        self._history[entity] = history
        return event


class Buffer(PipelineComponent):
    """Collect events and flush downstream every ``interval`` seconds or
    whenever ``max_items`` accumulate, whichever comes first."""

    def __init__(
        self,
        sim: Simulator,
        interval: float = 1.0,
        max_items: int = 100,
        name: str = "buffer",
    ):
        super().__init__(name)
        self._sim = sim
        self.interval = interval
        self.max_items = max_items
        self._pending: list[Notification] = []
        self._timer = None

    def on_event(self, event: Notification):
        self._pending.append(event)
        if len(self._pending) >= self.max_items:
            self.flush()
        elif self._timer is None:
            self._timer = self._sim.schedule(self.interval, self.flush)
        return None

    def flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        for event in pending:
            self.emit(event)

    def stop(self) -> None:
        self.flush()


class Transformer(PipelineComponent):
    """Apply ``fn`` to every event (e.g. unit conversion, enrichment)."""

    def __init__(self, fn: Callable[[Notification], Notification | None], name: str = ""):
        super().__init__(name or "transformer")
        self._fn = fn

    def on_event(self, event: Notification):
        return self._fn(event)
