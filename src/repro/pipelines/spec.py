"""Declarative pipeline descriptions (§4.9's programming abstraction).

A :class:`PipelineSpec` says *what* components a service needs and how they
connect; it deliberately says nothing about physical nodes.  Placement is
decided separately (by hand in the examples, by the evolution engine in the
full system), so topology stays "orthogonal to the service definition and
its deployment" (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ComponentSpec:
    """One component: registry name + parameters + needed capabilities."""

    name: str
    component: str
    params: tuple = ()
    capabilities: frozenset = frozenset()
    placement_hint: str = ""  # region name or "" = anywhere

    @classmethod
    def make(
        cls,
        name: str,
        component: str,
        params: dict | None = None,
        capabilities: set | frozenset | None = None,
        placement_hint: str = "",
    ) -> "ComponentSpec":
        return cls(
            name=name,
            component=component,
            params=tuple(sorted((params or {}).items())),
            capabilities=frozenset(capabilities or ()),
            placement_hint=placement_hint,
        )


@dataclass(frozen=True)
class EdgeSpec:
    """Directed event flow from one named component to another."""

    src: str
    dst: str


@dataclass(frozen=True)
class PipelineSpec:
    """A named pipeline: components plus edges."""

    name: str
    components: tuple
    edges: tuple = ()

    def validate(self) -> None:
        names = [c.name for c in self.components]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate component names in pipeline {self.name!r}")
        known = set(names)
        for edge in self.edges:
            if edge.src not in known or edge.dst not in known:
                raise ValueError(
                    f"edge {edge.src}->{edge.dst} references unknown components"
                )

    def component(self, name: str) -> ComponentSpec:
        for spec in self.components:
            if spec.name == name:
                return spec
        raise KeyError(name)
