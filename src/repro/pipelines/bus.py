"""XML event buses: filtered fan-out inside a node (§4.2).

"XML event buses allow incoming events to be delivered to multiple
downstream components, which may reside on the same node or on remote
nodes."  Subscribers attach with an optional content filter.
"""

from __future__ import annotations

from repro.events.filters import Filter
from repro.events.model import Notification
from repro.pipelines.component import PipelineComponent


class EventBus(PipelineComponent):
    """Fan-out with per-subscriber content filters."""

    def __init__(self, name: str = "bus"):
        super().__init__(name)
        self._subscribers: list[tuple[Filter | None, PipelineComponent]] = []

    def subscribe(
        self, component: PipelineComponent, filter: Filter | None = None
    ) -> None:
        self._subscribers.append((filter, component))

    def unsubscribe(self, component: PipelineComponent) -> None:
        self._subscribers = [
            (flt, comp) for flt, comp in self._subscribers if comp is not component
        ]

    def on_event(self, event: Notification):
        for flt, component in list(self._subscribers):
            if flt is None or flt.matches(event):
                component.put(event)
        # Plain downstream connections receive everything, like subscribers
        # with no filter.
        return event

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
