"""Registry entries for the stock pipeline components.

Importing :mod:`repro.pipelines` registers these, so any thin server with
the default registry can instantiate them from bundles.
"""

from __future__ import annotations

from repro.cingal.registry import register_component
from repro.pipelines.bus import EventBus
from repro.pipelines.component import Probe, SourceComponent
from repro.pipelines.filters import (
    Buffer,
    DedupFilter,
    DistanceFilter,
    RateLimiter,
    ThresholdFilter,
    TypeFilter,
)


@register_component("source")
def _make_source(ctx, params):
    return SourceComponent()


@register_component("probe")
def _make_probe(ctx, params):
    return Probe()


@register_component("bus")
def _make_bus(ctx, params):
    return EventBus()


@register_component("filter.type")
def _make_type_filter(ctx, params):
    allowed = {t for t in params.get("allowed", "").split(",") if t}
    return TypeFilter(allowed)


@register_component("filter.threshold")
def _make_threshold_filter(ctx, params):
    return ThresholdFilter(
        attribute=params.get("attribute", "value"),
        delta=float(params.get("delta", "1.0")),
        key=params.get("key", "subject"),
    )


@register_component("filter.distance")
def _make_distance_filter(ctx, params):
    return DistanceFilter(
        min_km=float(params.get("min_km", "0.1")),
        key=params.get("key", "subject"),
    )


@register_component("filter.dedup")
def _make_dedup_filter(ctx, params):
    return DedupFilter(ctx.sim, window=float(params.get("window", "10.0")))


@register_component("filter.ratelimit")
def _make_rate_limiter(ctx, params):
    return RateLimiter(
        ctx.sim,
        max_events=int(params.get("max_events", "10")),
        period=float(params.get("period", "60.0")),
        key=params.get("key", "subject"),
    )


@register_component("buffer")
def _make_buffer(ctx, params):
    return Buffer(
        ctx.sim,
        interval=float(params.get("interval", "1.0")),
        max_items=int(params.get("max_items", "100")),
    )
