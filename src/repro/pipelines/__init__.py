"""Distributed XML pipelines (§4.2, Figure 2).

Pipeline components exchange XML-encoded events intra-node (direct ``put``)
and inter-node (a ``put(event)`` message interface over the simulated
network, standing in for the paper's web-service interface).  Components
are deliberately independent of each other and of the transport.
"""

from repro.pipelines.component import (
    FunctionComponent,
    PipelineComponent,
    Probe,
    SourceComponent,
)
from repro.pipelines.bus import EventBus
from repro.pipelines.connectors import PipelineEvent, RemoteSender
from repro.pipelines.filters import (
    Buffer,
    DedupFilter,
    DistanceFilter,
    RateLimiter,
    ThresholdFilter,
    Transformer,
    TypeFilter,
)
from repro.pipelines.spec import ComponentSpec, EdgeSpec, PipelineSpec
from repro.pipelines.assembly import DeploymentAgent, deploy_pipeline
from repro.pipelines import standard as _standard  # registers stock components

__all__ = [
    "DeploymentAgent",
    "Buffer",
    "ComponentSpec",
    "DedupFilter",
    "DistanceFilter",
    "EdgeSpec",
    "EventBus",
    "FunctionComponent",
    "PipelineComponent",
    "PipelineEvent",
    "PipelineSpec",
    "Probe",
    "RateLimiter",
    "RemoteSender",
    "SourceComponent",
    "ThresholdFilter",
    "Transformer",
    "TypeFilter",
    "deploy_pipeline",
]
