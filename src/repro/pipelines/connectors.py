"""Inter-node pipeline connectors (Figure 2's node boundary).

A :class:`RemoteSender` serialises each event to XML and ships it to a named
component on another thin server, which deserialises and ``put``s it — the
simulation analogue of the paper's web-service ``put(event)`` interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.model import Notification
from repro.net.network import Address
from repro.pipelines.component import PipelineComponent
from repro.xmlkit.codec import notification_to_xml
from repro.xmlkit.writer import to_string


@dataclass
class PipelineEvent:
    """Wire form of one event addressed to a remote pipeline component."""

    component: str
    xml_text: str


class RemoteSender(PipelineComponent):
    """Forwards events to component ``target_component`` at ``target_addr``."""

    def __init__(
        self,
        host,  # the ThinServer (any Host) we send from
        target_addr: Address,
        target_component: str,
        name: str = "",
    ):
        super().__init__(name or f"remote->{target_component}")
        self._host = host
        self.target_addr = target_addr
        self.target_component = target_component

    def on_event(self, event: Notification):
        xml_text = to_string(notification_to_xml(event))
        self._host.send(
            self.target_addr,
            PipelineEvent(self.target_component, xml_text),
            size_bytes=len(xml_text) + 64,
        )
        self.events_out += 1
        return None  # the event left this node; nothing flows locally
