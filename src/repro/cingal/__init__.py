"""Cingal-style code push (§3, §4.3).

"Bundles of code and data wrapped in XML packets [are] deployed and run on a
thin server.  On arrival at a thin server, and subject to verification and
security checks, the code may be executed within a security domain.  Each
thin server provides the necessary infrastructure for code deployment,
authentication of bundles, a capability-based protection system and an
object store."  All four pieces are implemented here.
"""

from repro.cingal.bundle import Bundle, BundleError, sign_bundle, verify_bundle
from repro.cingal.capabilities import (
    ALL_CAPABILITIES,
    CAP_DEPLOY,
    CAP_EMIT,
    CAP_SPAWN,
    CAP_STORE_READ,
    CAP_STORE_WRITE,
    CapabilityError,
)
from repro.cingal.object_store import ObjectStore, QuotaExceeded
from repro.cingal.registry import ComponentRegistry, default_registry, register_component
from repro.cingal.thin_server import BundleContext, DeployAck, Fire, ThinServer

__all__ = [
    "ALL_CAPABILITIES",
    "Bundle",
    "BundleContext",
    "BundleError",
    "CAP_DEPLOY",
    "CAP_EMIT",
    "CAP_SPAWN",
    "CAP_STORE_READ",
    "CAP_STORE_WRITE",
    "CapabilityError",
    "ComponentRegistry",
    "DeployAck",
    "Fire",
    "ObjectStore",
    "QuotaExceeded",
    "ThinServer",
    "default_registry",
    "register_component",
    "sign_bundle",
    "verify_bundle",
]
