"""The code registry: component names -> factories.

Bundles reference components by registry name (the common, safe case) or
carry inline Python source for the restricted interpreter (the fully
dynamic case, off by default).  A thin server resolves the reference at
deployment time, so new component types become available everywhere the
registry update has been pushed — the paper's incremental evolution story.
"""

from __future__ import annotations

from typing import Callable


class ComponentRegistry:
    """A mapping of component names to factory callables."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable] = {}

    def register(self, name: str, factory: Callable) -> None:
        if name in self._factories:
            raise ValueError(f"component already registered: {name}")
        self._factories[name] = factory

    def replace(self, name: str, factory: Callable) -> None:
        """Hot-swap a component implementation (incremental evolution)."""
        self._factories[name] = factory

    def resolve(self, name: str) -> Callable:
        if name not in self._factories:
            raise KeyError(f"unknown component: {name}")
        return self._factories[name]

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def names(self) -> list[str]:
        return sorted(self._factories)


default_registry = ComponentRegistry()


def register_component(name: str, registry: ComponentRegistry | None = None):
    """Decorator: ``@register_component("filter.threshold")``."""

    def decorator(factory: Callable) -> Callable:
        (registry or default_registry).register(name, factory)
        return factory

    return decorator
