"""Bundles: code + data wrapped in XML packets, HMAC-authenticated.

A bundle names a component in the code registry (or carries inline Python
source for the restricted interpreter), parameters, optional XML data, the
capabilities it needs, and a signature over the canonical XML form.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field, replace

from repro.cingal.capabilities import validate_capabilities
from repro.xmlkit.model import XmlElement
from repro.xmlkit.writer import to_string


class BundleError(Exception):
    """Malformed, unverifiable or rejected bundle."""


@dataclass(frozen=True)
class Bundle:
    """An immutable deployable unit."""

    name: str
    component: str
    params: tuple = ()  # tuple of (key, value) string pairs
    data: XmlElement | None = None
    capabilities: frozenset = frozenset()
    signature: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise BundleError("bundle needs a name")
        if not self.component:
            raise BundleError("bundle needs a component reference")
        validate_capabilities(frozenset(self.capabilities))

    @property
    def param_dict(self) -> dict[str, str]:
        return dict(self.params)

    # -- XML form ---------------------------------------------------------
    def to_xml(self, include_signature: bool = True) -> XmlElement:
        root = XmlElement("bundle", {"name": self.name, "component": self.component})
        caps = XmlElement("capabilities")
        for cap in sorted(self.capabilities):
            caps.add_child(XmlElement("capability", {"name": cap}))
        root.add_child(caps)
        params = XmlElement("params")
        for key, value in sorted(self.params):
            params.add_child(XmlElement("param", {"name": key, "value": value}))
        root.add_child(params)
        if self.data is not None:
            data = XmlElement("data")
            data.add_child(self.data)
            root.add_child(data)
        if include_signature and self.signature:
            root.add_child(XmlElement("signature", {"value": self.signature}))
        return root

    @classmethod
    def from_xml(cls, root: XmlElement) -> "Bundle":
        if root.tag != "bundle":
            raise BundleError(f"expected <bundle>, got <{root.tag}>")
        name = root.attrs.get("name", "")
        component = root.attrs.get("component", "")
        caps_el = root.child("capabilities")
        capabilities = frozenset(
            c.attrs["name"] for c in (caps_el.children if caps_el else [])
        )
        params_el = root.child("params")
        params = tuple(
            sorted(
                (p.attrs["name"], p.attrs["value"])
                for p in (params_el.children if params_el else [])
            )
        )
        data_el = root.child("data")
        data = data_el.children[0] if data_el and data_el.children else None
        sig_el = root.child("signature")
        signature = sig_el.attrs.get("value", "") if sig_el else ""
        return cls(name, component, params, data, capabilities, signature)

    def signing_payload(self) -> bytes:
        """Canonical serialisation (signature excluded) that gets signed."""
        return to_string(self.to_xml(include_signature=False)).encode("utf-8")

    def wire_size(self) -> int:
        return len(to_string(self.to_xml())) + 64


def sign_bundle(bundle: Bundle, key: str) -> Bundle:
    """Return a copy of ``bundle`` carrying an HMAC-SHA256 signature."""
    mac = hmac.new(key.encode(), bundle.signing_payload(), hashlib.sha256)
    return replace(bundle, signature=mac.hexdigest())


def verify_bundle(bundle: Bundle, key: str) -> bool:
    """Constant-time verification of the bundle's signature."""
    if not bundle.signature:
        return False
    mac = hmac.new(key.encode(), bundle.signing_payload(), hashlib.sha256)
    return hmac.compare_digest(mac.hexdigest(), bundle.signature)


def make_bundle(
    name: str,
    component: str,
    params: dict[str, str] | None = None,
    data: XmlElement | None = None,
    capabilities: frozenset | set | None = None,
    key: str | None = None,
) -> Bundle:
    """Convenience constructor; signs when ``key`` is given."""
    bundle = Bundle(
        name=name,
        component=component,
        params=tuple(sorted((params or {}).items())),
        data=data,
        capabilities=frozenset(capabilities or ()),
    )
    return sign_bundle(bundle, key) if key is not None else bundle
