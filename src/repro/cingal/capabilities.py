"""Capability-based protection for code running on thin servers."""

from __future__ import annotations

CAP_STORE_READ = "store.read"
CAP_STORE_WRITE = "store.write"
CAP_EMIT = "events.emit"
CAP_SPAWN = "component.spawn"
CAP_DEPLOY = "deploy"

ALL_CAPABILITIES = frozenset(
    {CAP_STORE_READ, CAP_STORE_WRITE, CAP_EMIT, CAP_SPAWN, CAP_DEPLOY}
)


class CapabilityError(PermissionError):
    """A bundle attempted an operation its capability set does not allow."""


def validate_capabilities(caps: frozenset[str]) -> frozenset[str]:
    unknown = caps - ALL_CAPABILITIES
    if unknown:
        raise ValueError(f"unknown capabilities: {sorted(unknown)}")
    return caps
