"""Thin servers: verification, capabilities, object store, execution.

A thin server accepts ``Fire`` messages carrying bundles.  It verifies the
HMAC signature against its deployment key, checks the requested capability
set against its grant policy, resolves the component factory (registry name
or — if enabled — inline restricted Python source), and runs the component
inside a :class:`BundleContext` that mediates every privileged operation.
Deployed pipeline components are addressable by name for inter-node event
delivery and wiring (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cingal.bundle import Bundle, BundleError, verify_bundle
from repro.cingal.capabilities import (
    ALL_CAPABILITIES,
    CAP_DEPLOY,
    CAP_EMIT,
    CAP_STORE_READ,
    CAP_STORE_WRITE,
    CapabilityError,
)
from repro.cingal.object_store import ObjectStore
from repro.cingal.registry import ComponentRegistry, default_registry
from repro.events.model import Notification
from repro.net.geo import Position
from repro.net.host import Host
from repro.net.network import Address, Network
from repro.pipelines.bus import EventBus
from repro.pipelines.component import PipelineComponent
from repro.pipelines.connectors import PipelineEvent, RemoteSender
from repro.simulation import Simulator
from repro.xmlkit.codec import notification_from_xml
from repro.xmlkit.parser import parse


# Wire messages live in repro.cingal.messages; re-exported here for
# convenience of server-side code.
from repro.cingal.messages import (  # noqa: E402
    ConnectAck,
    ConnectLocal,
    ConnectRemote,
    DeployAck,
    Fire,
    Undeploy,
    UndeployAck,
)


_SAFE_BUILTINS = {
    "abs": abs, "bool": bool, "dict": dict, "enumerate": enumerate,
    "float": float, "int": int, "len": len, "list": list, "max": max,
    "min": min, "range": range, "round": round, "set": set, "sorted": sorted,
    "str": str, "sum": sum, "tuple": tuple, "zip": zip,
    # class statements inside bundles need the class-building machinery
    "__build_class__": __build_class__, "__name__": "bundle",
    "isinstance": isinstance, "super": super, "Exception": Exception,
    "ValueError": ValueError, "KeyError": KeyError, "TypeError": TypeError,
}


class BundleContext:
    """The API surface a running bundle sees; every call is capability-checked."""

    def __init__(self, server: "ThinServer", bundle: Bundle):
        self.server = server
        self.sim: Simulator = server.sim
        self.bundle = bundle
        self.capabilities = frozenset(bundle.capabilities)
        self.params = bundle.param_dict
        self.data = bundle.data

    def _require(self, capability: str) -> None:
        if capability not in self.capabilities:
            raise CapabilityError(
                f"bundle {self.bundle.name!r} lacks capability {capability!r}"
            )

    # -- object store -----------------------------------------------------
    def store_put(self, name: str, data: bytes) -> None:
        self._require(CAP_STORE_WRITE)
        self.server.store.put(name, data)

    def store_get(self, name: str) -> bytes:
        self._require(CAP_STORE_READ)
        return self.server.store.get(name)

    # -- events -------------------------------------------------------------
    def emit(self, event: Notification) -> None:
        """Publish onto the server's local event bus."""
        self._require(CAP_EMIT)
        self.server.local_bus.put(event)

    # -- onward deployment ---------------------------------------------------
    def deploy(self, bundle: Bundle, target: Address) -> None:
        """Push a further bundle to another thin server (code push chains)."""
        self._require(CAP_DEPLOY)
        self.server.send(target, Fire(bundle), size_bytes=bundle.wire_size())


class ThinServer(Host):
    """A node of the deployment infrastructure (Figure 3)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        position: Position,
        deploy_key: str,
        granted: frozenset | None = None,
        registry: ComponentRegistry | None = None,
        store_quota: int = 1 << 20,
        allow_source: bool = False,
    ):
        super().__init__(sim, network, position)
        self.deploy_key = deploy_key
        self.granted = ALL_CAPABILITIES if granted is None else frozenset(granted)
        self.registry = registry or default_registry
        self.store = ObjectStore(store_quota)
        self.local_bus = EventBus(name=f"bus@{self.addr}")
        self.components: dict[str, PipelineComponent] = {}
        self.deploy_count = 0
        self.rejected_count = 0

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, bundle: Bundle) -> PipelineComponent:
        """Verify, check capabilities, instantiate, run.  Raises on refusal."""
        if not verify_bundle(bundle, self.deploy_key):
            self.rejected_count += 1
            raise BundleError(f"signature verification failed for {bundle.name!r}")
        requested = frozenset(bundle.capabilities)
        if not requested <= self.granted:
            self.rejected_count += 1
            raise CapabilityError(
                f"bundle {bundle.name!r} requests {sorted(requested - self.granted)} "
                "beyond this server's grant policy"
            )
        context = BundleContext(self, bundle)
        factory = self._resolve_factory(bundle)
        component = factory(context, bundle.param_dict)
        if not isinstance(component, PipelineComponent):
            self.rejected_count += 1
            raise BundleError(
                f"component factory for {bundle.component!r} returned "
                f"{type(component).__name__}, not a PipelineComponent"
            )
        component.name = bundle.name
        previous = self.components.get(bundle.name)
        if previous is not None:
            self._swap(previous, component)
        self.components[bundle.name] = component
        self.deploy_count += 1
        return component

    def _resolve_factory(self, bundle: Bundle):
        if bundle.component == "__source__":
            return self._compile_source(bundle)
        try:
            return self.registry.resolve(bundle.component)
        except KeyError as err:
            self.rejected_count += 1
            raise BundleError(str(err)) from err

    def _compile_source(self, bundle: Bundle):
        """Inline Python source, executed in a restricted namespace."""
        source = bundle.param_dict.get("code", "")
        if not source:
            raise BundleError(f"source bundle {bundle.name!r} carries no code")
        if not getattr(self, "allow_source", False) and not self._allow_source:
            raise BundleError("inline source bundles are disabled on this server")
        namespace: dict[str, Any] = {
            "__builtins__": dict(_SAFE_BUILTINS),
            "PipelineComponent": PipelineComponent,
            "Notification": Notification,
        }
        exec(compile(source, f"<bundle {bundle.name}>", "exec"), namespace)
        factory = namespace.get("make")
        if not callable(factory):
            raise BundleError(f"source bundle {bundle.name!r} defines no make()")
        return factory

    def _swap(self, old: PipelineComponent, new: PipelineComponent) -> None:
        """Hot-replace a component, preserving its wiring (evolution, §4.3)."""
        new.downstream = list(old.downstream)
        for component in self.components.values():
            if old in component.downstream:
                component.disconnect(old)
                component.connect(new)
        self.local_bus.unsubscribe(old)
        old.stop()

    def undeploy(self, name: str) -> bool:
        component = self.components.pop(name, None)
        if component is None:
            return False
        for other in self.components.values():
            other.disconnect(component)
        self.local_bus.unsubscribe(component)
        component.stop()
        return True

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, src: Address, payload: Any) -> None:
        if isinstance(payload, Fire):
            try:
                self.deploy(payload.bundle)
                self.send(src, DeployAck(payload.bundle.name, True))
            except (BundleError, CapabilityError, Exception) as err:
                self.send(src, DeployAck(payload.bundle.name, False, str(err)))
        elif isinstance(payload, PipelineEvent):
            component = self.components.get(payload.component)
            if component is not None:
                component.put(notification_from_xml(parse(payload.xml_text)))
        elif isinstance(payload, ConnectLocal):
            self._handle_connect_local(src, payload)
        elif isinstance(payload, ConnectRemote):
            self._handle_connect_remote(src, payload)
        elif isinstance(payload, Undeploy):
            ok = self.undeploy(payload.component_name)
            self.send(src, UndeployAck(payload.component_name, ok))
        elif isinstance(payload, (DeployAck, ConnectAck, UndeployAck)):
            pass  # acks are consumed by assembly processes via hooks
        else:
            raise TypeError(f"unknown thin-server message: {payload!r}")

    def _handle_connect_local(self, src: Address, msg: ConnectLocal) -> None:
        src_comp = self.components.get(msg.src_component)
        dst_comp = self.components.get(msg.dst_component)
        if src_comp is None or dst_comp is None:
            self.send(src, ConnectAck(False, "unknown component", msg.req_id))
            return
        src_comp.connect(dst_comp)
        self.send(src, ConnectAck(True, "", msg.req_id))

    def _handle_connect_remote(self, src: Address, msg: ConnectRemote) -> None:
        src_comp = self.components.get(msg.src_component)
        if src_comp is None:
            self.send(
                src,
                ConnectAck(False, f"unknown component {msg.src_component!r}", msg.req_id),
            )
            return
        sender = RemoteSender(self, msg.dst_addr, msg.dst_component)
        src_comp.connect(sender)
        self.send(src, ConnectAck(True, "", msg.req_id))

    # Source-bundle switch; attribute (not ctor arg) so the common path
    # stays locked down unless a test/example explicitly opts in.
    _allow_source = False

    @property
    def allow_source(self) -> bool:
        return self._allow_source

    @allow_source.setter
    def allow_source(self, value: bool) -> None:
        self._allow_source = bool(value)
