"""Wire messages of the deployment infrastructure.

Kept separate from :mod:`thin_server` so the pipeline assembly layer can
speak the protocol without importing the server (and its pipeline
dependencies) — breaking the package cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cingal.bundle import Bundle
from repro.net.network import Address


@dataclass
class Fire:
    """Deploy-and-run a bundle (Cingal's fire operation)."""

    bundle: Bundle


@dataclass
class DeployAck:
    bundle_name: str
    ok: bool
    error: str = ""


@dataclass
class Undeploy:
    component_name: str


@dataclass
class UndeployAck:
    """``ok`` is False when the named component was not deployed here."""

    component_name: str
    ok: bool


@dataclass
class ConnectLocal:
    src_component: str
    dst_component: str
    req_id: int = 0


@dataclass
class ConnectRemote:
    src_component: str
    dst_addr: Address
    dst_component: str
    req_id: int = 0


@dataclass
class ConnectAck:
    ok: bool
    error: str = ""
    req_id: int = 0
