"""Per-thin-server object store with quota enforcement."""

from __future__ import annotations


class QuotaExceeded(Exception):
    pass


class ObjectStore:
    """Named byte objects, bounded by a byte quota."""

    def __init__(self, quota_bytes: int = 1 << 20):
        if quota_bytes <= 0:
            raise ValueError("quota must be positive")
        self.quota_bytes = quota_bytes
        self._objects: dict[str, bytes] = {}

    @property
    def bytes_used(self) -> int:
        return sum(len(v) for v in self._objects.values())

    def put(self, name: str, data: bytes) -> None:
        if not isinstance(data, bytes):
            raise TypeError("object store holds bytes")
        projected = self.bytes_used - len(self._objects.get(name, b"")) + len(data)
        if projected > self.quota_bytes:
            raise QuotaExceeded(
                f"storing {name!r} ({len(data)} B) would exceed quota "
                f"({projected} > {self.quota_bytes})"
            )
        self._objects[name] = data

    def get(self, name: str) -> bytes:
        if name not in self._objects:
            raise KeyError(name)
        return self._objects[name]

    def delete(self, name: str) -> bool:
        return self._objects.pop(name, None) is not None

    def names(self) -> list[str]:
        return sorted(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __len__(self) -> int:
        return len(self._objects)
