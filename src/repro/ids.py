"""128-bit GUID space shared by the overlay and the storage architecture.

The paper (§3) notes that all the cited P2P architectures "use hashing
algorithms to assign each document with a globally unique identifier (GUID)",
derived either from content (secure hash) or from names/keys.  This module
provides that identifier space plus the digit arithmetic Plaxton-style prefix
routing needs: identifiers are treated as 32 hexadecimal digits (base 16,
most significant first), matching Pastry with ``b = 4``.
"""

from __future__ import annotations

import hashlib
import random

GUID_BITS = 128
GUID_DIGITS = 32  # base-16 digits
DIGIT_BASE = 16
_GUID_SPACE = 1 << GUID_BITS
_HALF_SPACE = _GUID_SPACE >> 1


class Guid:
    """An immutable 128-bit identifier on the circular GUID ring."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not 0 <= value < _GUID_SPACE:
            raise ValueError(f"GUID out of range: {value:#x}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Guid is immutable")

    # -- construction ---------------------------------------------------
    @classmethod
    def from_hex(cls, text: str) -> "Guid":
        if len(text) != GUID_DIGITS:
            raise ValueError(f"expected {GUID_DIGITS} hex digits, got {len(text)}")
        return cls(int(text, 16))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Guid":
        if len(data) != GUID_BITS // 8:
            raise ValueError(f"expected {GUID_BITS // 8} bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    # -- representations -------------------------------------------------
    @property
    def hex(self) -> str:
        return f"{self.value:0{GUID_DIGITS}x}"

    def digit(self, index: int) -> int:
        """The ``index``-th hex digit, most significant first (0-based)."""
        if not 0 <= index < GUID_DIGITS:
            raise IndexError(f"digit index out of range: {index}")
        shift = 4 * (GUID_DIGITS - 1 - index)
        return (self.value >> shift) & 0xF

    # -- prefix / ring arithmetic ----------------------------------------
    def shared_prefix_len(self, other: "Guid") -> int:
        """Number of leading hex digits shared with ``other`` (0..32)."""
        xor = self.value ^ other.value
        if xor == 0:
            return GUID_DIGITS
        leading_zero_bits = GUID_BITS - xor.bit_length()
        return leading_zero_bits // 4

    def ring_distance(self, other: "Guid") -> int:
        """Shortest distance around the circular identifier space."""
        diff = abs(self.value - other.value)
        return min(diff, _GUID_SPACE - diff)

    def clockwise_distance(self, other: "Guid") -> int:
        """Distance travelling clockwise (increasing ids) from self to other."""
        return (other.value - self.value) % _GUID_SPACE

    def numeric_distance(self, other: "Guid") -> int:
        """Plain absolute difference, as used by Pastry's leaf set choice."""
        return abs(self.value - other.value)

    # -- comparisons / hashing ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Guid) and self.value == other.value

    def __lt__(self, other: "Guid") -> bool:
        return self.value < other.value

    def __le__(self, other: "Guid") -> bool:
        return self.value <= other.value

    def __gt__(self, other: "Guid") -> bool:
        return self.value > other.value

    def __ge__(self, other: "Guid") -> bool:
        return self.value >= other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"Guid({self.hex[:8]}..)"


def guid_from_content(data: bytes) -> Guid:
    """Content-derived GUID: the secure-hash naming scheme of PAST/OceanStore."""
    digest = hashlib.sha256(data).digest()
    return Guid.from_bytes(digest[: GUID_BITS // 8])


def guid_from_name(name: str) -> Guid:
    """Name-derived GUID (hash of keywords/filename in the paper's terms)."""
    return guid_from_content(name.encode("utf-8"))


def random_guid(rng: random.Random) -> Guid:
    return Guid(rng.getrandbits(GUID_BITS))
