"""Facts: subject-predicate-object triples with validity intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass

AttributeValue = str | int | float | bool


@dataclass(frozen=True)
class Fact:
    """One item of knowledge, optionally time-bounded.

    "Bob is on holiday from 20/6 to 27/6" is
    ``Fact("bob", "on-holiday", True, valid_from=..., valid_to=...)``.
    """

    subject: str
    predicate: str
    object: AttributeValue
    valid_from: float = -math.inf
    valid_to: float = math.inf

    def __post_init__(self) -> None:
        if not self.subject or not self.predicate:
            raise ValueError("facts need a subject and a predicate")
        if self.valid_from > self.valid_to:
            raise ValueError("validity interval is empty")

    def valid_at(self, time: float) -> bool:
        return self.valid_from <= time <= self.valid_to

    def key(self) -> str:
        """The shard key under which the distributed KB stores this fact."""
        return f"{self.subject}|{self.predicate}"

    def to_line(self) -> str:
        """Serialise for storage (tab-separated; values keep their type tag)."""
        type_tag = type(self.object).__name__
        return "\t".join(
            [
                self.subject,
                self.predicate,
                type_tag,
                str(self.object),
                repr(self.valid_from),
                repr(self.valid_to),
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "Fact":
        subject, predicate, type_tag, raw, valid_from, valid_to = line.split("\t")
        readers = {
            "str": str,
            "bool": lambda s: s == "True",
            "int": int,
            "float": float,
        }
        if type_tag not in readers:
            raise ValueError(f"unknown fact value type: {type_tag}")
        return cls(
            subject,
            predicate,
            readers[type_tag](raw),
            float(valid_from),
            float(valid_to),
        )
