"""The global knowledge base (§1.1, §1.2).

Facts — "Bob likes ice cream", "Bob knows Anna", "Janetta's sells
ice cream" — live in an indexed store with optional validity intervals.
:mod:`distributed` shards the facts over the P2P storage architecture with
local caching, which is how the matching engine sees "a global knowledge
base comprising elements such as GIS, web-based systems, databases".
"""

from repro.knowledge.facts import Fact
from repro.knowledge.base import KnowledgeBase
from repro.knowledge.distributed import DistributedKnowledgeBase

__all__ = ["DistributedKnowledgeBase", "Fact", "KnowledgeBase"]
