"""In-memory knowledge base with subject/predicate indexes."""

from __future__ import annotations

from repro.knowledge.facts import AttributeValue, Fact


class KnowledgeBase:
    """An indexed set of facts supporting pattern queries.

    Queries use ``None`` as a wildcard:
    ``kb.query(subject="bob", predicate=None)`` returns everything known
    about Bob (valid at the query time, when one is given).

    Subjects are indexed under ``str(subject)``: sensor feeds legitimately
    produce facts keyed by numeric ids, and ``kb.query(subject=7)`` and
    ``kb.query(subject="7")`` must find them either way.  ``version``
    counts successful mutations, so callers (the matching engine's link
    memo) can stamp cached query results.
    """

    def __init__(self) -> None:
        self._facts: set[Fact] = set()
        self._by_subject: dict[str, set[Fact]] = {}
        self._by_predicate: dict[str, set[Fact]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Increments on every successful ``add``/``remove``."""
        return self._version

    def add(self, fact: Fact) -> bool:
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_subject.setdefault(str(fact.subject), set()).add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        self._version += 1
        return True

    def remove(self, fact: Fact) -> bool:
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        self._by_subject.get(str(fact.subject), set()).discard(fact)
        self._by_predicate.get(fact.predicate, set()).discard(fact)
        self._version += 1
        return True

    def retract(self, subject: str, predicate: str) -> int:
        """Remove every fact with the given subject and predicate."""
        victims = [
            f for f in self._by_subject.get(str(subject), ()) if f.predicate == predicate
        ]
        for fact in victims:
            self.remove(fact)
        return len(victims)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    # ------------------------------------------------------------------
    def query(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        object: AttributeValue | None = None,
        at_time: float | None = None,
    ) -> list[Fact]:
        """All facts matching the non-None fields, valid at ``at_time``."""
        if subject is not None and predicate is not None:
            candidates = self._by_subject.get(str(subject), set()) & self._by_predicate.get(
                predicate, set()
            )
        elif subject is not None:
            candidates = self._by_subject.get(str(subject), set())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, set())
        else:
            candidates = self._facts
        out = []
        for fact in candidates:
            if object is not None and fact.object != object:
                continue
            if at_time is not None and not fact.valid_at(at_time):
                continue
            out.append(fact)
        out.sort(key=lambda f: (str(f.subject), f.predicate, str(f.object)))
        return out

    def value(
        self,
        subject: str,
        predicate: str,
        default: AttributeValue | None = None,
        at_time: float | None = None,
    ) -> AttributeValue | None:
        """The single object for (subject, predicate), or ``default``."""
        matches = self.query(subject=subject, predicate=predicate, at_time=at_time)
        return matches[0].object if matches else default

    def holds(
        self,
        subject: str,
        predicate: str,
        object: AttributeValue = True,
        at_time: float | None = None,
    ) -> bool:
        return bool(
            self.query(subject=subject, predicate=predicate, object=object, at_time=at_time)
        )
