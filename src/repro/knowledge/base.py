"""In-memory knowledge base with subject/predicate/object indexes."""

from __future__ import annotations

from repro.knowledge.facts import AttributeValue, Fact


class KnowledgeBase:
    """An indexed set of facts supporting pattern queries.

    Queries use ``None`` as a wildcard:
    ``kb.query(subject="bob", predicate=None)`` returns everything known
    about Bob (valid at the query time, when one is given).

    Subjects are indexed under ``str(subject)``: sensor feeds legitimately
    produce facts keyed by numeric ids, and ``kb.query(subject=7)`` and
    ``kb.query(subject="7")`` must find them either way.  ``version``
    counts successful mutations, so callers (the matching engine's link
    memo) can stamp cached query results.

    Objects are indexed twice, serving the two lookup disciplines:

    * ``_by_object`` keys on the raw value, so ``query(object=...)``
      narrows to the exact ``==`` equivalence class the scan filter uses
      (Python folds ``True``/``1``/``1.0`` together in both, so the
      bucket *is* the class) instead of walking a whole predicate
      bucket.
    * ``_by_object_str`` keys on ``str(object)`` — the engine's
      reverse-link discipline (:meth:`query_object_str`), symmetric
      with the subject index so ``knows → 7`` finds int-object facts
      whether the anchor arrives as ``7`` or ``"7"``.
    """

    def __init__(self) -> None:
        self._facts: set[Fact] = set()
        self._by_subject: dict[str, set[Fact]] = {}
        self._by_predicate: dict[str, set[Fact]] = {}
        self._by_object: dict[AttributeValue, set[Fact]] = {}
        self._by_object_str: dict[str, set[Fact]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Increments on every successful ``add``/``remove``."""
        return self._version

    def add(self, fact: Fact) -> bool:
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_subject.setdefault(str(fact.subject), set()).add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        self._by_object.setdefault(fact.object, set()).add(fact)
        self._by_object_str.setdefault(str(fact.object), set()).add(fact)
        self._version += 1
        return True

    def remove(self, fact: Fact) -> bool:
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        self._discard_index(self._by_subject, str(fact.subject), fact)
        self._discard_index(self._by_predicate, fact.predicate, fact)
        self._discard_index(self._by_object, fact.object, fact)
        self._discard_index(self._by_object_str, str(fact.object), fact)
        self._version += 1
        return True

    @staticmethod
    def _discard_index(index: dict, key, fact: Fact) -> None:
        members = index.get(key)
        if members is not None:
            members.discard(fact)
            if not members:
                del index[key]

    def retract(self, subject: str, predicate: str) -> int:
        """Remove every fact with the given subject and predicate."""
        victims = [
            f for f in self._by_subject.get(str(subject), ()) if f.predicate == predicate
        ]
        for fact in victims:
            self.remove(fact)
        return len(victims)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    # ------------------------------------------------------------------
    def query(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        object: AttributeValue | None = None,
        at_time: float | None = None,
    ) -> list[Fact]:
        """All facts matching the non-None fields, valid at ``at_time``."""
        pools = []
        if subject is not None:
            pools.append(self._by_subject.get(str(subject), set()))
        if predicate is not None:
            pools.append(self._by_predicate.get(predicate, set()))
        if object is not None:
            # The raw-value bucket is the ``==`` equivalence class the
            # residual filter below re-checks (the filter only still
            # matters for never-self-equal values like NaN).
            pools.append(self._by_object.get(object, set()))
        if pools:
            candidates = set.intersection(*pools) if len(pools) > 1 else pools[0]
        else:
            candidates = self._facts
        out = []
        for fact in candidates:
            if object is not None and fact.object != object:
                continue
            if at_time is not None and not fact.valid_at(at_time):
                continue
            out.append(fact)
        out.sort(key=lambda f: (str(f.subject), f.predicate, str(f.object)))
        return out

    def query_object_str(
        self,
        object: AttributeValue,
        predicate: str | None = None,
        at_time: float | None = None,
    ) -> list[Fact]:
        """Facts whose ``str(object)`` equals ``str(object)`` argument.

        The reverse-link lookup: symmetric with the subject index's
        ``str`` discipline, so ``query_object_str(7)`` and
        ``query_object_str("7")`` both find a fact whose object is the
        int ``7`` — previously this required scanning the whole
        predicate bucket.
        """
        candidates = self._by_object_str.get(str(object), set())
        if predicate is not None:
            candidates = candidates & self._by_predicate.get(predicate, set())
        out = [
            fact
            for fact in candidates
            if at_time is None or fact.valid_at(at_time)
        ]
        out.sort(key=lambda f: (str(f.subject), f.predicate, str(f.object)))
        return out

    def value(
        self,
        subject: str,
        predicate: str,
        default: AttributeValue | None = None,
        at_time: float | None = None,
    ) -> AttributeValue | None:
        """The single object for (subject, predicate), or ``default``."""
        matches = self.query(subject=subject, predicate=predicate, at_time=at_time)
        return matches[0].object if matches else default

    def holds(
        self,
        subject: str,
        predicate: str,
        object: AttributeValue = True,
        at_time: float | None = None,
    ) -> bool:
        return bool(
            self.query(subject=subject, predicate=predicate, object=object, at_time=at_time)
        )
