"""The knowledge base sharded over the P2P storage architecture.

Facts are grouped into shards keyed by (subject, predicate); each shard is
one content item in :mod:`repro.storage`, so it inherits replication,
promiscuous caching and self-healing.  Writers may also publish ``kb-update``
notifications so matchlets holding local replicas learn of new knowledge
without polling — the paper's requirement that "both the events and the
knowledge base must be delivered to the locations at which the matching
computation occurs" (§1.2).
"""

from __future__ import annotations

from typing import Callable

from repro.ids import guid_from_name
from repro.knowledge.base import KnowledgeBase
from repro.knowledge.facts import Fact
from repro.simulation import Future
from repro.storage.service import StorageService

SHARD_PREFIX = "kb-shard:"


def shard_guid(subject: str, predicate: str):
    return guid_from_name(f"{SHARD_PREFIX}{subject}|{predicate}")


class DistributedKnowledgeBase:
    """One node's handle onto the global fact store."""

    def __init__(
        self,
        storage: StorageService,
        publish_update: Callable[[Fact], None] | None = None,
    ):
        self.storage = storage
        self.publish_update = publish_update

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def store_facts(self, facts: list[Fact]) -> Future:
        """Merge ``facts`` into their shards; resolves when all are stored."""
        shards: dict[str, list[Fact]] = {}
        for fact in facts:
            shards.setdefault(fact.key(), []).append(fact)
        done = Future()
        remaining = [len(shards)]

        def one_finished(fut: Future) -> None:
            if done.done:
                return
            if fut.exception is not None:
                done.set_exception(fut.exception)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set_result(len(facts))

        for key, shard_facts in shards.items():
            self._merge_shard(key, shard_facts).add_callback(one_finished)
        if not shards:
            done.set_result(0)
        if self.publish_update is not None:
            for fact in facts:
                self.publish_update(fact)
        return done

    def _merge_shard(self, key: str, new_facts: list[Fact]) -> Future:
        guid = guid_from_name(SHARD_PREFIX + key)
        merged = Future()

        def write(existing: list[Fact]) -> None:
            all_facts = {f for f in existing} | set(new_facts)
            payload = "\n".join(sorted(f.to_line() for f in all_facts)).encode()
            self.storage.put_named(guid, payload).add_callback(
                lambda fut: merged.set_exception(fut.exception)
                if fut.exception
                else merged.set_result(len(all_facts))
            )

        def on_read(fut: Future) -> None:
            if fut.exception is not None:
                write([])  # first write for this shard
            else:
                write(_decode(fut.result()))

        self.storage.get(guid).add_callback(on_read)
        return merged

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def lookup(self, subject: str, predicate: str) -> Future:
        """Resolves to the (possibly empty) list of facts in the shard."""
        guid = shard_guid(subject, predicate)
        out = Future()

        def on_read(fut: Future) -> None:
            if fut.exception is not None:
                out.set_result([])
            else:
                out.set_result(_decode(fut.result()))

        self.storage.get(guid).add_callback(on_read)
        return out

    def hydrate(self, kb: KnowledgeBase, keys: list[tuple[str, str]]) -> Future:
        """Pull the listed (subject, predicate) shards into a local KB."""
        done = Future()
        remaining = [len(keys)]
        if not keys:
            done.set_result(0)
            return done
        loaded = [0]

        def on_shard(fut: Future) -> None:
            if fut.exception is None:
                for fact in fut.result():
                    kb.add(fact)
                    loaded[0] += 1
            remaining[0] -= 1
            if remaining[0] == 0 and not done.done:
                done.set_result(loaded[0])

        for subject, predicate in keys:
            self.lookup(subject, predicate).add_callback(on_shard)
        return done


def _decode(payload: bytes) -> list[Fact]:
    text = payload.decode()
    return [Fact.from_line(line) for line in text.splitlines() if line.strip()]
