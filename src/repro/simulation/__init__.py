"""Discrete-event simulation kernel.

Everything in the reproduction runs on a virtual clock: the wide-area
network, the peer-to-peer overlays, sensors and the matching engine are all
scheduled through a single :class:`~repro.simulation.kernel.Simulator`, which
makes experiments deterministic and lets a simulated "day" of a city run in
well under a second of real time.
"""

from repro.simulation.futures import Future, FutureError
from repro.simulation.kernel import CancelledHandle, ScheduledHandle, Simulator
from repro.simulation.periodic import PeriodicTask
from repro.simulation.processes import Process, spawn

__all__ = [
    "CancelledHandle",
    "Future",
    "FutureError",
    "PeriodicTask",
    "Process",
    "ScheduledHandle",
    "Simulator",
    "spawn",
]
