"""Generator-based processes on top of the callback scheduler.

Protocol code reads sequentially::

    def client(sim, store):
        guid = yield store.put(b"payload")     # yield a Future -> its result
        yield 0.5                              # yield a number  -> sleep
        data = yield store.get(guid)
        return data

    proc = spawn(sim, client(sim, store))
    sim.run()
    assert proc.result() == b"payload"

A process yields either a number (sleep for that many virtual seconds) or a
:class:`~repro.simulation.futures.Future` (resume with its result, or have
its exception thrown into the generator).  The process object is itself a
Future whose value is the generator's return value.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.simulation.futures import Future
from repro.simulation.kernel import Simulator

ProcessGenerator = Generator[Any, Any, Any]


class Process(Future):
    """A running generator process; completes with the generator's return."""

    __slots__ = ("_sim", "_gen", "name")

    def __init__(self, sim: Simulator, gen: ProcessGenerator, name: str = ""):
        super().__init__()
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        sim.schedule(0.0, self._advance, None, None)

    def _advance(self, value: Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except Exception as err:
            self.set_exception(err)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if yielded is None:
            self._sim.schedule(0.0, self._advance, None, None)
        elif isinstance(yielded, (int, float)):
            self._sim.schedule(float(yielded), self._advance, None, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._on_future)
        else:
            self._sim.schedule(
                0.0,
                self._advance,
                None,
                TypeError(f"process yielded unsupported value: {yielded!r}"),
            )

    def _on_future(self, fut: Future) -> None:
        # Resume on a fresh scheduler slot so completion callbacks never
        # reentrantly run process code inside whoever resolved the future.
        if fut.exception is not None:
            self._sim.schedule(0.0, self._advance, None, fut.exception)
        else:
            self._sim.schedule(0.0, self._advance, fut.result(), None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: ProcessGenerator, name: str = "") -> Process:
    """Start ``gen`` as a process; it first runs on the next scheduler slot."""
    return Process(sim, gen, name=name)
