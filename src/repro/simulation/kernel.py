"""The discrete-event scheduler at the bottom of every experiment.

The kernel is deliberately tiny: a binary heap of timed callbacks and a
family of named, deterministic random number streams.  Protocol code that
wants to read sequentially (waiting on replies, sleeping) is layered on top
in :mod:`repro.simulation.processes`.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Any, Callable


class CancelledHandle(Exception):
    """Raised when interacting with a handle that was already cancelled."""


class ScheduledHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledHandle t={self.time:.6f} {state} fn={self.fn!r}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed.  All randomness in a simulation must come from
        :attr:`rng` or from named streams obtained via :meth:`rng_for`,
        which makes whole experiments reproducible from a single integer.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._heap: list[ScheduledHandle] = []
        self._seq = 0
        self._seed = seed
        self.rng = random.Random(seed)
        self._named_rngs: dict[str, random.Random] = {}
        self._coalesced: dict[Any, ScheduledHandle] = {}
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledHandle:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        handle = ScheduledHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def coalesce_at(
        self, time: float, key: Any, fn: Callable[..., Any], *args: Any
    ) -> ScheduledHandle:
        """Schedule ``fn(*args)`` at ``time``, once per (``key``, ``time``).

        While a coalesced callback for the same key and instant is still
        pending, further calls return its handle without scheduling
        anything — the building block for batched delivery: N same-tick
        messages on one link collapse into one simulator event, and the
        callback drains whatever accumulated behind the key.  A call
        with the same key but a *different* time schedules normally (the
        earlier handle keeps its slot and still fires).
        """
        pending = self._coalesced.get(key)
        if pending is not None and pending.time == time and not pending.cancelled:
            return pending

        def runner() -> None:
            if self._coalesced.get(key) is handle:
                del self._coalesced[key]
            fn(*args)

        handle = self.schedule_at(time, runner)
        self._coalesced[key] = handle
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the heap is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self.events_processed += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the heap drains, ``until`` passes, or a budget hits.

        Returns the number of events processed by this call.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the last
        event fires earlier, so back-to-back ``run`` calls tile cleanly.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                return processed
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and nxt.time > until:
                break
            self.step()
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed

    def run_for(self, duration: float, max_events: int | None = None) -> int:
        """Run for ``duration`` seconds of virtual time."""
        return self.run(until=self._now + duration, max_events=max_events)

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Deterministic named random streams
    # ------------------------------------------------------------------
    def rng_for(self, name: str) -> random.Random:
        """A random stream keyed on ``name``, independent of call order.

        Two simulations with the same root seed hand out identical streams
        for identical names, regardless of how many other streams were
        created in between — unlike drawing sub-seeds from :attr:`rng`.
        """
        if name not in self._named_rngs:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            self._named_rngs[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._named_rngs[name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} pending={len(self._heap)}>"
