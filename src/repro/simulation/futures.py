"""Single-assignment futures used for asynchronous replies in the simulator."""

from __future__ import annotations

from typing import Any, Callable


class FutureError(Exception):
    """Raised on invalid future transitions (double-set, unset result read)."""


class Future:
    """A single-assignment result container with completion callbacks.

    Futures carry either a value or an exception.  Callbacks added after
    completion fire immediately (synchronously), which keeps the scheduler
    free of bookkeeping events.
    """

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def set_result(self, value: Any) -> None:
        if self._done:
            raise FutureError("future already completed")
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise FutureError("future already completed")
        self._done = True
        self._exception = exc
        self._fire()

    def result(self) -> Any:
        """Return the value, raising the stored exception if there is one."""
        if not self._done:
            raise FutureError("future not completed yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Call ``fn(self)`` once the future completes (now, if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    # Convenience constructors -----------------------------------------
    @classmethod
    def completed(cls, value: Any) -> "Future":
        fut = cls()
        fut.set_result(value)
        return fut

    @classmethod
    def failed(cls, exc: BaseException) -> "Future":
        fut = cls()
        fut.set_exception(exc)
        return fut

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._done:
            return "<Future pending>"
        if self._exception is not None:
            return f"<Future failed {self._exception!r}>"
        return f"<Future done {self._result!r}>"
