"""The simulated-kernel side of the fleet transport interface.

The sharded fleet (:mod:`repro.events.sharding`) is written against one
tiny surface — ``register(addr, handler)`` plus
``send(src, dst, payload)`` — so the same router/shard/client objects
run unchanged on the discrete-event kernel here and on real sockets
(:class:`repro.net.transport.AsyncioTransport`).  This shim maps each
registered handler onto a :class:`~repro.net.host.Host`, so fleet
traffic inherits everything the simulated network models: latency by
geography, loss, partitions, per-(src, dst) FIFO ordering and crash
semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.net.geo import Position
from repro.net.host import Host
from repro.net.network import Network

Address = Hashable
Handler = Callable[[Address, Any], None]


class _TransportHost(Host):
    """One registered endpoint: forwards received payloads to a handler."""

    def __init__(self, sim, network, position, addr, handler: Handler):
        super().__init__(sim, network, position, addr=addr)
        self._handler = handler

    def handle_message(self, src: Address, payload: Any) -> None:
        self._handler(src, payload)


class SimTransport:
    """Fleet transport over the simulated kernel and network.

    ``register`` attaches a handler at an address (creating a host on
    the simulated network); ``send`` is the :class:`SendFn` the fleet
    components close over.  Unknown destination addresses are passed to
    the network untouched — it already models them as silent drops,
    matching what a real socket fleet sees for a vanished peer.
    """

    def __init__(self, sim, network: Network, position: Position | None = None):
        self.sim = sim
        self.network = network
        self._default_position = position or Position(0.0, 0.0)
        self.hosts: dict[Address, _TransportHost] = {}

    def register(
        self, addr: Address, handler: Handler, position: Position | None = None
    ) -> _TransportHost:
        host = _TransportHost(
            self.sim,
            self.network,
            position or self._default_position,
            addr,
            handler,
        )
        self.hosts[addr] = host
        return host

    def send(self, src: Address, dst: Address, payload: Any) -> None:
        host = self.hosts.get(src)
        if host is not None:
            host.send(dst, payload)
        else:
            self.network.send(src, dst, payload, 256)

    def run(self, for_s: float = 10.0) -> None:
        """Drain in-flight traffic by advancing the kernel."""
        self.sim.run_for(for_s)
