"""Recurring tasks (heartbeats, sensor sampling, maintenance sweeps)."""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.simulation.kernel import ScheduledHandle, Simulator


class PeriodicTask:
    """Calls ``fn()`` every ``interval`` simulated seconds until stopped.

    ``jitter`` (a fraction of the interval) desynchronises large populations
    of identical tasks, which matters for realism: a thousand sensors must
    not all sample on the same tick.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], Any],
        jitter: float = 0.0,
        start_delay: float | None = None,
        rng: random.Random | None = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._sim = sim
        self.interval = interval
        self._fn = fn
        self._jitter = jitter
        self._rng = rng or sim.rng
        self._handle: ScheduledHandle | None = None
        self._running = True
        self.fire_count = 0
        first = self._jittered(interval) if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._tick)

    def _jittered(self, base: float) -> float:
        if self._jitter == 0.0:
            return base
        spread = base * self._jitter
        return base + self._rng.uniform(-spread, spread)

    def _tick(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._fn()
        if self._running:
            self._handle = self._sim.schedule(self._jittered(self.interval), self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._running
