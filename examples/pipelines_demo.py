"""Figures 2 and 3 as code: XML pipelines assembled from pushed bundles.

Deploys a three-stage pipeline (source -> distance filter -> probe) split
across two thin servers.  Every component arrives as a signed XML code
bundle (Figure 3); events cross the node boundary as XML documents through
the ``put(event)`` interface (Figure 2).

Run:  python examples/pipelines_demo.py
"""

from repro.cingal import ThinServer
from repro.events.model import make_event
from repro.net import GeographicLatency, Network, Position
from repro.pipelines import (
    ComponentSpec,
    DeploymentAgent,
    EdgeSpec,
    PipelineSpec,
    deploy_pipeline,
)
from repro.simulation import Simulator

KEY = "demo-key"


def main() -> None:
    sim = Simulator(seed=1)
    network = Network(sim, latency=GeographicLatency())
    edinburgh = ThinServer(sim, network, Position(55.95, -3.19), KEY)
    sydney = ThinServer(sim, network, Position(-33.87, 151.21), KEY)
    agent = DeploymentAgent(sim, network, Position(55.95, -3.19))

    spec = PipelineSpec(
        name="gps-feed",
        components=(
            ComponentSpec.make("gps-entry", "source"),
            ComponentSpec.make(
                "movement-filter", "filter.distance", params={"min_km": "0.5"}
            ),
            ComponentSpec.make("sink", "probe"),
        ),
        edges=(
            EdgeSpec("gps-entry", "movement-filter"),
            EdgeSpec("movement-filter", "sink"),
        ),
    )
    placement = {"gps-entry": edinburgh, "movement-filter": edinburgh, "sink": sydney}

    process = deploy_pipeline(sim, agent, spec, placement, KEY)
    while not process.done:
        sim.run_for(1.0)
    print(f"pipeline {process.result()!r} deployed:")
    print(f"  edinburgh runs {sorted(edinburgh.components)}")
    print(f"  sydney    runs {sorted(sydney.components)}")

    # Feed a jittery GPS trace: small wobbles are filtered locally in
    # Edinburgh; big moves cross the planet as XML events.
    entry = edinburgh.components["gps-entry"]
    lat = 55.9500
    for step in range(10):
        lat += 0.0005 if step % 3 else 0.02  # wobble, wobble, leap
        entry.put(
            make_event("loc", time=sim.now, subject="bob", lat=lat, lon=-3.19)
        )
        sim.run_for(2.0)

    sink = sydney.components["sink"]
    fed = entry.events_in
    arrived = len(sink.events)
    print(f"\n{fed} fixes fed in Edinburgh; {arrived} crossed to Sydney "
          f"({fed - arrived} filtered at the edge)")
    for event in sink.events:
        print(f"  arrived: lat={event['lat']:.4f} (sim t={event['time']:.1f}s)")


if __name__ == "__main__":
    main()
