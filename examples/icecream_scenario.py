"""The paper's Section 1.1 scenario, end to end, with a narrated timeline.

The correlation items from the paper:
  - Bob likes ice cream, but only when the weather is hot and he has time
  - it is 20C in South Street at 16:30
  - Bob is on holiday 20/6-27/6; Bob is Scottish (so 20C counts as hot)
  - Bob is in North Street at 16:45, on foot
  - Janetta's in Market Street sells ice cream, open 9:00-17:00
  - Bob knows Anna; Anna is at 56.3397,-2.80753 at 16:15

If all of these correlate within 16:45-16:50, both Bob and Anna should be
told to meet for an ice cream at Janetta's around 16:55.

Run:  python examples/icecream_scenario.py
"""

from repro import ActiveArchitecture, ArchitectureConfig
from repro.knowledge.facts import Fact
from repro.net.geo import Position
from repro.sensors import Person, make_st_andrews
from repro.services import IceCreamMeetupService


def hhmm(seconds: float) -> str:
    minutes = int(seconds % 86400) // 60
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


def main() -> None:
    arch = ActiveArchitecture(ArchitectureConfig(seed=3, overlay_nodes=16, brokers=5))
    city = make_st_andrews()
    # Base 14C + 6C diurnal amplitude peaks at 20C at 15:00 and is still
    # exactly at Bob's Scottish "hot" threshold around 16:30.
    arch.add_city(city, weather_base_c=14.0)

    bob = Person(
        "bob",
        Position(56.3412, -2.7952),  # North Street
        nationality="scottish",
        likes=["ice-cream"],
        knows=["anna"],
        travel_mode="foot",
    )
    anna = Person(
        "anna",
        Position(56.3397, -2.80753),  # the paper's coordinate for Anna
        likes=["ice-cream"],
        knows=["bob"],
    )
    arch.add_person(bob)
    arch.add_person(anna)

    day = 86400.0
    holiday = [Fact("bob", "on-holiday", True, valid_from=0.0, valid_to=7 * day)]
    arch.settle(
        arch.publish_facts(
            bob.profile_facts()
            + anna.profile_facts()
            + holiday
            + [Fact("anna", "free-time", True)]
        )
    )

    runtime = arch.deploy_service(IceCreamMeetupService(city))
    agents = {name: arch.add_user_agent(name) for name in ("bob", "anna")}

    print("== the knowledge ==")
    for fact in holiday + bob.profile_facts():
        print(f"  {fact.subject} {fact.predicate} {fact.object!r}")

    print("\n== running the day ==")
    for until_h in (12.0, 14.0, 15.0, 16.0, 16.75, 17.5):
        arch.run(until_h * 3600.0 - arch.sim.now)
        weather = [s for s in arch.sensors if getattr(s, "area", "") == city.name][0]
        print(
            f"  {hhmm(arch.sim.now)}  temp={weather.temperature_at(arch.sim.now):5.1f}C  "
            f"suggestions so far: {len(runtime.suggestions)}"
        )

    print("\n== outcome ==")
    stats = runtime.stats()
    print(f"  {stats['events_in']} low-level events were distilled into "
          f"{stats['synthesized']} suggestions ({stats['matches']} correlations)")
    for name, agent in agents.items():
        if agent.received:
            at, event = agent.received[0]
            print(
                f"  {name:>4}: told at {hhmm(at)} to meet {event['friend']} at "
                f"{event['place']} ({event['street']}) at {hhmm(float(event['meet_at']))}"
            )
        else:
            print(f"  {name:>4}: no suggestion (try a warmer seed/day)")


if __name__ == "__main__":
    main()
