"""The paper's *global* scenario: Bob in Australia (§1.1).

"Bob, currently in Australia, walks past a restaurant previously
recommended by Anna: her opinion of the restaurant should be delivered to
Bob if it is dinner time and he has no plans for dinner, or if he is
staying a few more days in the area."

Anna's recommendation was stored (from Scotland) into the *global*
knowledge base; Bob's GPS events originate in Sydney; matching happens on
whatever thin server hosts the service — the items to be matched are
globally distributed.

Run:  python examples/global_recommendation.py
"""

from repro import ActiveArchitecture, ArchitectureConfig
from repro.gis.places import OpeningHours, Place
from repro.knowledge.facts import Fact
from repro.net.geo import Position
from repro.sensors import Person
from repro.sensors.city import City, make_synthetic_city
from repro.services import RestaurantRecommendationService


def make_sydney() -> City:
    """A small synthetic Sydney with one notable restaurant."""
    import random

    city = make_synthetic_city(
        "sydney", random.Random(99), centre=Position(-33.8688, 151.2093), places=10
    )
    city.add_place(
        Place(
            "Harbourside Oysters",
            Position(-33.8690, 151.2095),
            "restaurant",
            OpeningHours.from_hours(11.0, 23.0),
            street="The Quay",
        )
    )
    return city


def main() -> None:
    arch = ActiveArchitecture(ArchitectureConfig(seed=21, overlay_nodes=16, brokers=5))
    sydney = make_sydney()
    arch.add_city(sydney, weather_base_c=20.0)

    # Bob roams Sydney on foot, starting right by the recommended place.
    bob = Person("bob", Position(-33.8690, 151.2097), knows=["anna"])
    arch.add_person(bob)

    # Anna's opinion entered the global KB long ago, from the other side of
    # the world; so did Bob's travel plans.
    arch.settle(
        arch.publish_facts(
            [
                Fact("bob", "knows", "anna"),
                Fact("Harbourside Oysters", "recommended-by", "anna"),
                Fact(
                    "Harbourside Oysters",
                    "opinion-of:anna",
                    "get the flat oysters, skip dessert",
                ),
                Fact("bob", "staying-days", 5),  # staying a few more days
            ]
        )
    )

    runtime = arch.deploy_service(RestaurantRecommendationService([sydney]))
    bob_agent = arch.add_user_agent("bob")

    arch.run(12.0 * 3600.0)  # a Sydney morning and lunchtime

    print(f"matchlet saw {runtime.stats()['events_in']} events")
    print(f"suggestions synthesised: {runtime.stats()['synthesized']}")
    if bob_agent.received:
        _, event = bob_agent.received[0]
        print(
            f"bob, walking past {event['place']}: "
            f"\"{event['opinion']}\" — {event['recommended_by']}"
        )
    else:
        print("no recommendation delivered (unexpected for this seed)")


if __name__ == "__main__":
    main()
