"""Quickstart: the smallest complete use of the active architecture.

Builds the world, adds two friends in St Andrews, deploys the ice-cream
meetup service, runs a simulated afternoon and prints what the matching
engine synthesised.

Run:  python examples/quickstart.py
"""

from repro import ActiveArchitecture, ArchitectureConfig
from repro.knowledge.facts import Fact
from repro.net.geo import Position
from repro.sensors import Person, make_st_andrews
from repro.services import IceCreamMeetupService


def main() -> None:
    # 1. The infrastructure: overlay + storage + brokers + thin servers.
    arch = ActiveArchitecture(ArchitectureConfig(seed=7, overlay_nodes=12, brokers=4))

    # 2. The world: a city with a weather sensor, and two people with GPS.
    city = make_st_andrews()
    arch.add_city(city, weather_base_c=17.0)  # peaks around 23C mid-afternoon
    bob = Person(
        "bob",
        Position(56.3412, -2.7952),  # North Street
        nationality="scottish",
        likes=["ice-cream"],
        knows=["anna"],
    )
    anna = Person("anna", Position(56.3397, -2.80753), likes=["ice-cream"], knows=["bob"])
    arch.add_person(bob)
    arch.add_person(anna)

    # 3. The knowledge: profiles plus situational facts.
    arch.settle(
        arch.publish_facts(
            bob.profile_facts()
            + anna.profile_facts()
            + [Fact("bob", "on-holiday", True), Fact("anna", "free-time", True)]
        )
    )

    # 4. Deploy the service (a matchlet bundle pushed to a thin server).
    runtime = arch.deploy_service(IceCreamMeetupService(city))
    bob_agent = arch.add_user_agent("bob")

    # 5. Run a simulated day until teatime.
    arch.run(16.5 * 3600.0)

    stats = runtime.stats()
    print(f"events into the matchlet : {stats['events_in']}")
    print(f"correlations matched     : {stats['matches']}")
    print(f"suggestions synthesised  : {stats['synthesized']}")
    print(f"delivered to bob         : {len(bob_agent.received)}")
    if bob_agent.received:
        _, first = bob_agent.received[0]
        hh, mm = divmod(int(first["meet_at"]) // 60, 60)
        print(
            f"first suggestion: meet {first['friend']} at {first['place']} "
            f"({first['street']}) at {hh:02d}:{mm % 60:02d}"
        )


if __name__ == "__main__":
    main()
