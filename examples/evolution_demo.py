"""Constraint-driven deployment, self-healing, and recovery (§4.4, §4.6).

Installs the paper's own example constraint — "at least 5 pipeline
components providing a data replication service must be deployed in
parallel within a given geographical region" — then kills a node and
watches the monitoring + evolution engines repair the deployment,
RAID-style.  Finally the "crashed" node turns out to have been merely
silent: it resumes advertising, the monitor publishes ``node-recovered``,
and the engine revives its deployments instead of writing them off.

Run:  python examples/evolution_demo.py
"""

from repro import ActiveArchitecture, ArchitectureConfig
from repro.events.broker import SienaClient
from repro.evolution.advertisement import ResourceAdvertiser
from repro.evolution.constraints import MinComponentsInRegion
from repro.evolution.engine import BundleTemplate


def main() -> None:
    # 15 brokers/thin servers across 5 world regions: three per region, so
    # a region can lose a node and still have a spare to heal onto.
    arch = ActiveArchitecture(
        ArchitectureConfig(seed=5, overlay_nodes=12, brokers=15, suspect_after_s=60.0)
    )

    # Which regions did the thin servers land in?
    by_region: dict[str, list[int]] = {}
    from repro.evolution.advertisement import region_of

    for index, server in enumerate(arch.servers):
        by_region.setdefault(region_of(server.position), []).append(index)
    region, indices = max(by_region.items(), key=lambda kv: len(kv[1]))
    print(f"targeting region {region!r} with servers {indices}")

    want = len(indices) - 1  # leave one spare node for the repair
    arch.evolution.register_template(
        "replication-service", BundleTemplate(component="probe")
    )
    arch.run(60.0)  # let advertisements flow
    arch.evolution.add_constraint(
        MinComponentsInRegion("replication-service", region, want)
    )
    arch.run(120.0)
    live = arch.evolution.state.live("replication-service", region)
    print(f"t={arch.sim.now:7.1f}s  deployed {len(live)}/{want}: "
          f"{sorted(d.node_id for d in live)}")

    victim = live[0]
    victim_index = int(victim.node_id.split("-")[1])
    print(f"t={arch.sim.now:7.1f}s  CRASH {victim.node_id}")
    arch.servers[victim_index].crash()
    arch.advertisers[victim_index].stop()

    for _ in range(10):
        arch.run(60.0)
        live = arch.evolution.state.live("replication-service", region)
        satisfied = arch.evolution.satisfied()
        print(
            f"t={arch.sim.now:7.1f}s  live={len(live)}/{want}  "
            f"constraint {'satisfied' if satisfied else 'VIOLATED'}"
        )
        if satisfied and all(d.node_id != victim.node_id for d in live):
            break

    # -- recovery: the silence was transient, not a crash ----------------
    # The host comes back and resumes resource advertisements; the monitor
    # flips it alive, publishes node-recovered, and the engine un-discounts
    # everything still deployed there.
    print(f"\nt={arch.sim.now:7.1f}s  RECOVER {victim.node_id}")
    arch.servers[victim_index].recover()
    client = SienaClient(
        arch.sim,
        arch.network,
        arch.servers[victim_index].position,
        arch.brokers[victim_index],
    )
    arch.advertisers[victim_index] = ResourceAdvertiser(
        arch.sim,
        node_id=victim.node_id,
        addr=arch.servers[victim_index].addr,
        position=arch.servers[victim_index].position,
        publish=client.publish,
        period_s=arch.config.advertise_period_s,
    )
    arch.run(60.0)
    live = arch.evolution.state.live("replication-service", region)
    revived = sorted(d.node_id for d in live if d.node_id == victim.node_id)
    print(
        f"t={arch.sim.now:7.1f}s  recoveries detected: "
        f"{[n for _, n in arch.monitor.recoveries_detected]}  "
        f"live={len(live)}/{want}  revived={revived}"
    )

    print("\nrepair log:")
    for action in arch.evolution.actions:
        print(
            f"  t={action.time:7.1f}s  {action.instance_name} -> "
            f"{action.node_id} ({action.cause})"
        )


if __name__ == "__main__":
    main()
